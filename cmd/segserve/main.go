// Command segserve exposes one index structure over HTTP together with
// its full observability surface: per-operation latency histograms and
// the paper's cost-model counters (SIMD comparisons, node visits, ...)
// as Prometheus text metrics (including Go runtime metrics), expvar
// JSON, Go's pprof profiles, and per-operation search tracing — an
// on-demand Explain endpoint plus always-on 1-in-N sampled traces with a
// slow-op log. With -slo it also runs a burn-rate SLO engine over
// recent-window metrics and a flight recorder that freezes a diagnostics
// bundle on each transition into breach.
//
// Every request also runs under a request span (internal/reqtrace): a
// valid sampled W3C traceparent header continues the caller's trace, and
// headerless requests are self-sampled 1 in -span-rate. Sampled spans
// carry the trace_id/span_id stamped into the request log line, feed
// OpenMetrics exemplars on the request-latency histogram, and are
// retained for /debug/requests — so one trace ID follows an operation
// from a segload client through this server's logs, metrics and debug
// endpoints.
//
//	segserve -structure opt-segtrie -shards 16 -preload 100000 \
//	    -slo 'get_p99<2ms,error_rate<0.001' -ready-slo -flight-dir /tmp/flight
//
//	curl 'localhost:8080/put?key=42&value=answer'
//	curl 'localhost:8080/get?key=42'
//	curl 'localhost:8080/getbatch?keys=1,2,42'
//	curl 'localhost:8080/scan?lo=10&hi=20&limit=5'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'          # Prometheus 0.0.4 + runtime metrics
//	curl 'localhost:8080/debug/vars'       # expvar JSON
//	curl 'localhost:8080/debug/snapshot'   # MVCC state: versions, pinned readers, reclamation
//	curl 'localhost:8080/debug/shape'      # structural-health report (?format=json)
//	curl 'localhost:8080/debug/explain?key=42'          # one traced descent
//	curl 'localhost:8080/debug/explain?key=42&format=json'
//	curl 'localhost:8080/debug/traces'     # recent sampled traces (JSON)
//	curl 'localhost:8080/debug/requests'   # recent request spans; ?trace=<32 hex> looks one trace up
//	curl 'localhost:8080/debug/slowops'    # sampled traces over the threshold
//	curl 'localhost:8080/debug/tracerate'  # sampler stats; set with ?every=&slow=
//	curl 'localhost:8080/healthz'          # liveness (never SLO-aware)
//	curl 'localhost:8080/readyz'           # readiness; 503 while breaching with -ready-slo
//	curl 'localhost:8080/debug/slo'        # SLO engine status (JSON)
//	curl 'localhost:8080/debug/flightrecorder'       # bundle list
//	curl 'localhost:8080/debug/flightrecorder?id=1'  # one full bundle
//
// Keys are uint64, values are strings. The index is wrapped in
// InstrumentedIndex (histograms + counters + trace sampling) over MVCC
// snapshot publication — a VersionedIndex, or with -shards >= 2 a
// ShardedIndex whose shards each publish versions — so concurrent
// requests are safe and reads never take a lock.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	simdtree "repro"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/reqtrace"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	traceRate := flag.Int("trace-rate", 1024, "trace 1 in this many gets (0 disables sampling)")
	slowThreshold := flag.Duration("slow-threshold", time.Millisecond,
		"sampled gets at least this slow enter the slow-op log (0 disables)")
	drain := flag.Duration("drain", 10*time.Second,
		"how long to wait for in-flight requests on SIGINT/SIGTERM")
	var cfg serverConfig
	flag.StringVar(&cfg.structure, "structure", "segtree",
		"index structure: segtree, segtrie, opt-segtrie, btree")
	flag.IntVar(&cfg.shards, "shards", 16, "key-range shards (>= 2; 1 disables sharding)")
	flag.IntVar(&cfg.preload, "preload", 0, "preload this many consecutive keys before serving")
	flag.IntVar(&cfg.spanRate, "span-rate", 1024,
		"self-sample 1 in this many headerless requests as request spans (0 disables; sampled traceparents are always continued)")
	flag.StringVar(&cfg.slo, "slo", "",
		"SLO objectives to evaluate continuously, e.g. 'get_p99<2ms,error_rate<0.001' (empty disables the engine)")
	flag.BoolVar(&cfg.readySLO, "ready-slo", false,
		"make /readyz return 503 while the SLO state is breaching (requires -slo)")
	flag.StringVar(&cfg.flightDir, "flight-dir", "",
		"spill flight-recorder diagnostics bundles to this directory (in-memory ring only when empty)")
	flag.DurationVar(&cfg.tick, "window-tick", defaultWindowTick,
		"epoch length of the windowed metrics; windows are merges of these epochs")
	flag.DurationVar(&cfg.fastWindow, "slo-fast", health.DefaultFastWindow,
		"fast burn-rate window (also the /stats window_* quantile span)")
	flag.DurationVar(&cfg.slowWindow, "slo-slow", health.DefaultSlowWindow,
		"slow burn-rate window")
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "segserve: %v\n", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	s, err := newServer(cfg)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	s.ix.Sampler().SetRate(*traceRate)
	s.ix.Sampler().SetSlowThreshold(*slowThreshold)
	logger.Info("serving",
		"structure", cfg.structure, "shards", cfg.shards, "addr", *addr,
		"preloaded", cfg.preload, "trace_rate", *traceRate, "slow_threshold", *slowThreshold,
		"span_rate", cfg.spanRate, "slo", cfg.slo, "window_tick", cfg.tick)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go s.runTicker(ctx)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: s.handler(logger)}
	if err := runServer(ctx, srv, ln, *drain, logger); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}

// runServer serves srv on ln until ctx is cancelled (a shutdown
// signal), then drains in-flight requests via http.Server.Shutdown with
// the given timeout. A nil return is a clean drain; requests still open
// at the deadline are cut off and the Shutdown error returned. Split
// from main so the drain path is testable.
func runServer(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration, logger *slog.Logger) error {
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain incomplete after %v: %w", drain, err)
	}
	logger.Info("drained cleanly")
	return nil
}

// newLogger builds a slog.Logger at the named level in the named format:
// "text" (logfmt-style key=value) for humans tailing the process, "json"
// for log pipelines that index fields like trace_id.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// defaultWindowTick is the epoch length of the windowed metrics: coarse
// enough that rotation is negligible, fine enough that a 30 s fast
// window spans several epochs.
const defaultWindowTick = 5 * time.Second

// serverConfig is everything newServer needs; main fills it from flags,
// tests construct it directly.
type serverConfig struct {
	structure string
	shards    int
	preload   int
	// spanRate self-samples 1 in this many headerless requests as request
	// spans (0 disables); requests carrying a valid sampled traceparent
	// are always continued regardless.
	spanRate int
	// slo enables the health engine ("" disables); readySLO ties /readyz
	// to it; flightDir spills diagnostics bundles to disk.
	slo       string
	readySLO  bool
	flightDir string
	// tick is the windowed-metrics epoch length; fastWindow and
	// slowWindow the burn-rate windows (zero means the defaults).
	tick       time.Duration
	fastWindow time.Duration
	slowWindow time.Duration
}

// server owns the instrumented index and its HTTP handlers. It is split
// from main so tests can drive the mux through httptest.
type server struct {
	ix  *simdtree.InstrumentedIndex[uint64, string]
	cfg serverConfig
	// reqTotal and reqErrs count requests and 5xx responses per window
	// epoch — the denominators and numerators of error_rate objectives.
	reqTotal *obs.WindowedCounter
	reqErrs  *obs.WindowedCounter
	// tracer owns the request spans; reqLat is the whole-request latency
	// window whose buckets carry the sampled spans as exemplars.
	tracer *reqtrace.Tracer
	reqLat *obs.WindowedHistogram
	// engine and flight are nil unless cfg.slo is set.
	engine *health.Engine
	flight *health.Recorder
}

var structures = map[string]simdtree.Structure{
	"segtree":     simdtree.StructureSegTree,
	"segtrie":     simdtree.StructureSegTrie,
	"opt-segtrie": simdtree.StructureOptimizedSegTrie,
	"btree":       simdtree.StructureBPlusTree,
}

func newServer(cfg serverConfig) (*server, error) {
	s, ok := structures[cfg.structure]
	if !ok {
		return nil, fmt.Errorf("unknown structure %q (want segtree, segtrie, opt-segtrie or btree)", cfg.structure)
	}
	if cfg.tick <= 0 {
		cfg.tick = defaultWindowTick
	}
	if cfg.fastWindow <= 0 {
		cfg.fastWindow = health.DefaultFastWindow
	}
	if cfg.slowWindow <= 0 {
		cfg.slowWindow = health.DefaultSlowWindow
	}
	if cfg.readySLO && cfg.slo == "" {
		return nil, fmt.Errorf("-ready-slo requires -slo")
	}
	// WithSnapshots keeps the unsharded (-shards 1) server on the MVCC
	// path too: every read pins a published version instead of locking,
	// so reads never stall behind the writer. With >= 2 shards the
	// sharded index is a per-shard snapshot publisher already.
	ix := simdtree.NewInstrumentedIndex[uint64, string](
		simdtree.WithStructure(s), simdtree.WithShards(cfg.shards), simdtree.WithSnapshots())
	for i := 0; i < cfg.preload; i++ {
		ix.Put(uint64(i), strconv.Itoa(i))
	}
	// Sampling is attached here with serving defaults; main re-tunes the
	// rate and threshold from flags, and /debug/tracerate at runtime.
	ix.EnableSampling(1024, time.Millisecond)
	// The epoch ring must span the slow burn-rate window.
	epochs := int((cfg.slowWindow + cfg.tick - 1) / cfg.tick)
	ix.EnableWindows(cfg.tick, epochs)
	srv := &server{
		ix:       ix,
		cfg:      cfg,
		reqTotal: obs.NewWindowedCounter(cfg.tick, epochs),
		reqErrs:  obs.NewWindowedCounter(cfg.tick, epochs),
		tracer:   reqtrace.NewTracer(cfg.spanRate, 0),
		reqLat:   obs.NewWindowedHistogram(cfg.tick, epochs),
	}
	if cfg.slo != "" {
		objectives, err := health.ParseObjectives(cfg.slo)
		if err != nil {
			return nil, fmt.Errorf("bad -slo: %w", err)
		}
		srv.flight = health.NewRecorder(health.DefaultRecorderCap, cfg.flightDir)
		srv.engine, err = health.NewEngine(health.Config{
			Objectives: objectives,
			FastWindow: cfg.fastWindow,
			SlowWindow: cfg.slowWindow,
			Probe:      srv.probe,
			OnBreach:   srv.captureBundle,
		})
		if err != nil {
			return nil, fmt.Errorf("bad SLO configuration: %w", err)
		}
	}
	srv.ix.PublishExpvar("segserve")
	return srv, nil
}

// probe assembles the health.Sample the SLO engine evaluates: windowed
// per-op latency snapshots plus the request/error counts over the same
// trailing window.
func (s *server) probe(window time.Duration) health.Sample {
	ops := make(map[string]obs.HistogramSnapshot, len(simdtree.Ops))
	for _, op := range simdtree.Ops {
		if h, ok := s.ix.WindowSnapshot(op, window); ok {
			ops[op.String()] = h
		}
	}
	return health.Sample{
		Ops:    ops,
		Errors: s.reqErrs.ReadWindow(window),
		Total:  s.reqTotal.ReadWindow(window),
	}
}

// tick advances one windowed-metrics epoch and, when an SLO is
// configured, re-evaluates it. Tests call it directly with a synthetic
// clock; runTicker drives it in production.
func (s *server) tick(now time.Time) {
	s.ix.RotateWindows()
	s.reqTotal.Rotate()
	s.reqErrs.Rotate()
	s.reqLat.Rotate()
	if s.engine != nil {
		s.engine.Evaluate(now)
	}
}

// runTicker rotates windows and evaluates the SLO engine every epoch
// until ctx is cancelled.
func (s *server) runTicker(ctx context.Context) {
	t := time.NewTicker(s.cfg.tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.tick(now)
		}
	}
}

// captureBundle is the engine's OnBreach hook: freeze every diagnostic
// the server can produce into one flight-recorder bundle. Draining (not
// copying) the slow-op ring means consecutive bundles carry distinct
// evidence.
func (s *server) captureBundle(st health.Status) {
	b := &health.Bundle{
		CapturedAt:       time.Now(),
		Reason:           "slo breach: " + strings.Join(st.BreachingObjectives(), ","),
		Status:           st,
		Windows:          make(map[string]health.WindowQuantiles),
		SlowOps:          s.ix.Sampler().DrainSlowOps(),
		Sampled:          s.ix.Sampler().Sampled(),
		Spans:            s.tracer.Drain(),
		GoroutineProfile: health.GoroutineProfile(),
	}
	for _, op := range simdtree.Ops {
		if h, ok := s.ix.WindowSnapshot(op, s.cfg.fastWindow); ok && h.Count > 0 {
			b.Windows[op.String()] = health.WindowQuantilesOf(h)
		}
	}
	rep := s.ix.Shape()
	b.Shape = &rep
	if mv, ok := s.ix.MVCCInfo(); ok {
		b.MVCC = &mv
	}
	rt := obs.ReadRuntimeSnapshot()
	b.Runtime = &rt
	id, err := s.flight.Record(b)
	if err != nil {
		slog.Error("flight-recorder spill failed", "bundle", id, "err", err)
		return
	}
	slog.Warn("slo breach: flight-recorder bundle captured",
		"bundle", id, "objectives", st.BreachingObjectives())
}

// mux routes every endpoint and wraps the routes with the windowed
// request/error counting the SLO engine's error_rate objectives read.
func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/get", s.handleGet)
	mux.HandleFunc("/put", s.handlePut)
	mux.HandleFunc("/delete", s.handleDelete)
	mux.HandleFunc("/getbatch", s.handleGetBatch)
	mux.HandleFunc("/scan", s.handleScan)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/snapshot", s.handleSnapshot)
	mux.HandleFunc("/debug/shape", s.handleShape)
	mux.HandleFunc("/debug/explain", s.handleExplain)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/requests", s.handleRequests)
	mux.HandleFunc("/debug/slowops", s.handleSlowOps)
	mux.HandleFunc("/debug/tracerate", s.handleTraceRate)
	mux.HandleFunc("/debug/slo", s.handleSLO)
	mux.HandleFunc("/debug/flightrecorder", s.handleFlightRecorder)
	// expvar and pprof register on http.DefaultServeMux; re-expose them on
	// our own mux so segserve works with a custom one.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.counting(mux)
}

// counting feeds the windowed request and 5xx counters behind every
// error_rate objective. It counts all endpoints: a failing /stats is as
// much an error budget spend as a failing /get.
func (s *server) counting(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.reqTotal.Add(1)
		if sw.status >= http.StatusInternalServerError {
			s.reqErrs.Add(1)
		}
	})
}

// handler wraps the mux with request spans and structured request
// logging. A valid sampled traceparent header continues the caller's
// trace as a remote child span; a headerless (or unsampled, or
// malformed) request is self-sampled 1 in cfg.spanRate. Unsampled
// requests carry a nil span through the whole stack and pay one atomic
// load here; sampled ones additionally stamp trace_id/span_id into the
// log line and become the request-latency histogram's exemplars.
func (s *server) handler(logger *slog.Logger) http.Handler {
	mux := s.mux()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		var sp *reqtrace.Span
		if sc, err := reqtrace.ParseTraceparent(r.Header.Get(reqtrace.TraceparentHeader)); err == nil {
			sp = s.tracer.StartRemote(r.URL.Path, sc)
		} else {
			sp = s.tracer.StartRoot(r.URL.Path)
		}
		req := r
		if sp != nil {
			sp.SetAttr("method", r.Method)
			req = r.WithContext(reqtrace.NewContext(r.Context(), sp))
		}
		mux.ServeHTTP(sw, req)
		d := time.Since(start)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration", d,
			"keys", requestKeyCount(r),
		}
		if sp != nil {
			sp.SetAttr("status", strconv.Itoa(sw.status))
			s.tracer.Finish(sp)
			s.reqLat.ObserveExemplar(d, sp.TraceID.Hi, sp.TraceID.Lo)
			attrs = append(attrs, "trace_id", sp.TraceID.String(), "span_id", sp.SpanID.String())
		} else {
			s.reqLat.Observe(d)
		}
		logger.Info("request", attrs...)
	})
}

// statusWriter captures the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// requestKeyCount counts the keys a request addresses: one for a key=
// parameter, the list length for keys=, zero otherwise.
func requestKeyCount(r *http.Request) int {
	q := r.URL.Query()
	if q.Get("key") != "" {
		return 1
	}
	if ks := q.Get("keys"); ks != "" {
		return strings.Count(ks, ",") + 1
	}
	return 0
}

func keyParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	k, err := strconv.ParseUint(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		http.Error(w, "bad or missing key parameter: "+err.Error(), http.StatusBadRequest)
		return 0, false
	}
	return k, true
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	var v string
	var found bool
	if sp := reqtrace.FromContext(r.Context()); sp != nil {
		// A sampled request gets the Explain treatment for free: the
		// lookup runs traced and the descent rides on the request span, so
		// /debug/requests shows not just that this request was slow but
		// which nodes and SIMD compares its lookup paid.
		tr := trace.New("get", strconv.FormatUint(k, 10))
		v, found = s.ix.GetTraced(k, tr)
		tr.Finish(found)
		sp.AttachDescent(tr)
	} else {
		v, found = s.ix.Get(k)
	}
	if !found {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	fmt.Fprintln(w, v)
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	s.ix.Put(k, r.URL.Query().Get("value"))
	fmt.Fprintln(w, "ok")
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	if !s.ix.Delete(k) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *server) handleGetBatch(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(r.URL.Query().Get("keys"), ",")
	ks := make([]uint64, 0, len(parts))
	for _, p := range parts {
		k, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			http.Error(w, "bad keys parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		ks = append(ks, k)
	}
	vs, found := s.ix.GetBatch(ks)
	for i, k := range ks {
		if found[i] {
			fmt.Fprintf(w, "%d %s\n", k, vs[i])
		} else {
			fmt.Fprintf(w, "%d MISSING\n", k)
		}
	}
}

// handleScan streams the [lo, hi] range in key order as "key value"
// lines, at most limit of them (default 1000).
func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lo, err := strconv.ParseUint(q.Get("lo"), 10, 64)
	if err != nil {
		http.Error(w, "bad or missing lo parameter: "+err.Error(), http.StatusBadRequest)
		return
	}
	hi, err := strconv.ParseUint(q.Get("hi"), 10, 64)
	if err != nil {
		http.Error(w, "bad or missing hi parameter: "+err.Error(), http.StatusBadRequest)
		return
	}
	limit := 1000
	if ls := q.Get("limit"); ls != "" {
		if limit, err = strconv.Atoi(ls); err != nil || limit < 1 {
			http.Error(w, "bad limit parameter (want a positive integer)", http.StatusBadRequest)
			return
		}
	}
	n := 0
	s.ix.Scan(lo, hi, func(k uint64, v string) bool {
		fmt.Fprintf(w, "%d %s\n", k, v)
		n++
		return n < limit
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.ix.Snapshot()
	st := snap.Stats
	fmt.Fprintf(w, "keys %d\nheight %d\nnodes %d\nmemory_bytes %d\nkey_memory_bytes %d\n",
		st.Keys, st.Height, st.Nodes, st.MemoryBytes, st.KeyMemoryBytes)
	if mv, ok := s.ix.MVCCInfo(); ok {
		fmt.Fprintf(w, "version %d\nversions_published %d\nactive_snapshots %d\n",
			mv.CurrentVersion(), mv.Published, mv.ActiveSnapshots)
	}
	c := snap.Counters
	fmt.Fprintf(w, "simd_comparisons %d\nmask_evaluations %d\nnode_visits %d\nlevels_descended %d\nscalar_comparisons %d\n",
		c.SIMDComparisons, c.MaskEvaluations, c.NodeVisits, c.LevelsDescended, c.ScalarComparisons)
	for _, op := range snap.Ops {
		if op.Histogram.Count > 0 {
			fmt.Fprintf(w, "op_%s_count %d\nop_%s_mean_ns %d\n",
				op.Op, op.Histogram.Count, op.Op, op.Histogram.Mean().Nanoseconds())
			// The same interpolated quantiles the workload driver reports,
			// so server-side and client-side latency line up by name.
			fmt.Fprintf(w, "op_%s_p50_ns %g\nop_%s_p99_ns %g\nop_%s_p999_ns %g\n",
				op.Op, op.Histogram.QuantileNanos(0.50),
				op.Op, op.Histogram.QuantileNanos(0.99),
				op.Op, op.Histogram.QuantileNanos(0.999))
		}
	}
	// The recent-window counterparts next to the lifetime figures: the
	// lifetime p99 barely moves when the last 30 s went bad, the windowed
	// one jumps.
	fmt.Fprintf(w, "window_seconds %g\n", s.cfg.fastWindow.Seconds())
	fmt.Fprintf(w, "window_requests %d\nwindow_errors %d\n",
		s.reqTotal.ReadWindow(s.cfg.fastWindow), s.reqErrs.ReadWindow(s.cfg.fastWindow))
	if h := s.reqLat.ReadWindow(s.cfg.fastWindow); h.Count > 0 {
		fmt.Fprintf(w, "window_request_p50_ns %g\nwindow_request_p99_ns %g\nwindow_request_p999_ns %g\n",
			h.QuantileNanos(0.50), h.QuantileNanos(0.99), h.QuantileNanos(0.999))
	}
	ts := s.tracer.Stats()
	fmt.Fprintf(w, "spans_started %d\nspans_finished %d\n", ts.Started, ts.Finished)
	// Exemplar breadcrumbs under a leading '#': human-readable next to the
	// numbers, shaped so segclient.Stats' "name number" parser skips them.
	for i, ex := range s.reqLat.Exemplars() {
		if ex != nil {
			fmt.Fprintf(w, "# exemplar bucket=%d trace_id=%s value_ns=%d\n", i, ex.TraceIDString(), ex.NS)
		}
	}
	for _, op := range simdtree.Ops {
		h, ok := s.ix.WindowSnapshot(op, s.cfg.fastWindow)
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "op_%s_window_count %d\nop_%s_window_p50_ns %g\nop_%s_window_p99_ns %g\nop_%s_window_p999_ns %g\n",
			op, h.Count,
			op, h.QuantileNanos(0.50),
			op, h.QuantileNanos(0.99),
			op, h.QuantileNanos(0.999))
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.ix.WritePrometheus(w, "segserve")
	obs.WriteRuntimeProm(w, "segserve_go")
	if mv, ok := s.ix.MVCCInfo(); ok {
		mv.WriteProm(w, "segserve_mvcc")
	}
	st := s.ix.Sampler().Stats()
	fmt.Fprintf(w, "# TYPE segserve_trace_sampled_total counter\nsegserve_trace_sampled_total %d\n", st.Sampled)
	fmt.Fprintf(w, "# TYPE segserve_trace_slow_total counter\nsegserve_trace_slow_total %d\n", st.Slow)
	// The whole-request latency window with per-bucket exemplars: a bucket
	// whose latency worries a dashboard reader names the trace_id of the
	// last sampled request that paid it, the /debug/requests?trace= key.
	s.reqLat.ReadWindow(s.cfg.fastWindow).HistogramPromExemplars(w,
		"segserve_request_duration_window_seconds", "",
		"request latency over the fast window, with trace exemplars",
		s.reqLat.Exemplars())
	ts := s.tracer.Stats()
	fmt.Fprintf(w, "# TYPE segserve_span_requests_total counter\nsegserve_span_requests_total %d\n", ts.Ops)
	fmt.Fprintf(w, "# TYPE segserve_spans_started_total counter\nsegserve_spans_started_total %d\n", ts.Started)
	fmt.Fprintf(w, "# TYPE segserve_spans_finished_total counter\nsegserve_spans_finished_total %d\n", ts.Finished)
	if s.engine != nil {
		s.engine.WriteProm(w, "segserve_health")
	}
	if s.flight != nil {
		fmt.Fprintf(w, "# TYPE segserve_flight_bundles gauge\nsegserve_flight_bundles %d\n", s.flight.Len())
	}
}

// handleHealthz answers liveness probes; the reported version number is
// the index's highest published MVCC sequence, a cheap way to observe
// write progress from the outside. Liveness is deliberately pure: a
// breaching SLO never makes this endpoint fail — that is /readyz's job —
// so orchestrators don't restart a process that is slow but alive.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if mv, ok := s.ix.MVCCInfo(); ok {
		fmt.Fprintf(w, "ok version=%d\n", mv.CurrentVersion())
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers readiness probes. It always reports the SLO state
// when an engine runs; with -ready-slo it additionally returns 503 while
// the state is Breaching, steering load balancers away from an instance
// that is burning its error budget, without restarting it.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.engine == nil {
		fmt.Fprintln(w, "ready")
		return
	}
	st := s.engine.Status()
	if s.cfg.readySLO && st.State == health.Breaching {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "breaching %s\n", strings.Join(st.BreachingObjectives(), ","))
		return
	}
	fmt.Fprintf(w, "ready slo=%s\n", st.State)
}

// handleSLO reports the engine's full status — per-objective windowed
// values, burn rates and states — as JSON; 404 when no -slo was given.
func (s *server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	if s.engine == nil {
		http.Error(w, "no SLO engine (start with -slo)", http.StatusNotFound)
		return
	}
	writeJSON(w, s.engine.Status())
}

// handleFlightRecorder lists the retained diagnostics bundles (newest
// first), or serves one in full with ?id=N; 404 when no -slo was given.
func (s *server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "no flight recorder (start with -slo)", http.StatusNotFound)
		return
	}
	if ids := r.URL.Query().Get("id"); ids != "" {
		id, err := strconv.ParseUint(ids, 10, 64)
		if err != nil {
			http.Error(w, "bad id parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		b, ok := s.flight.Get(id)
		if !ok {
			http.Error(w, fmt.Sprintf("no bundle %d (retained: %d)", id, s.flight.Len()), http.StatusNotFound)
			return
		}
		writeJSON(w, b)
		return
	}
	writeJSON(w, s.flight.List())
}

// handleSnapshot reports the MVCC publication state — per-shard version
// sequence numbers, currently pinned reader epochs, retired versions
// awaiting reclamation, and the publish/reclaim/clone counters — as
// JSON.
func (s *server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	mv, ok := s.ix.MVCCInfo()
	if !ok {
		http.Error(w, "index is not versioned", http.StatusNotFound)
		return
	}
	writeJSON(w, mv)
}

// handleShape walks the index and renders its structural-health report —
// per-level fill, register utilization, the key/pointer/padding byte
// split — plain text by default, the full report with ?format=json.
func (s *server) handleShape(w http.ResponseWriter, r *http.Request) {
	rep := s.ix.Shape()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, rep)
		return
	}
	fmt.Fprint(w, rep)
}

// handleExplain runs one traced lookup and renders the descent — plain
// text by default, the full structured trace with ?format=json.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	tr := s.ix.Explain(k)
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, tr)
		return
	}
	fmt.Fprintln(w, tr)
}

func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.Sampler().Sampled())
}

// handleRequests serves the recent request spans (newest first) with the
// tracer's counters — the server-side half of distributed tracing.
// ?trace=<32 hex> narrows to the spans of one trace, the lookup a client
// holding a printed trace_id (segload -trace, a log line, a metrics
// exemplar) performs.
func (s *server) handleRequests(w http.ResponseWriter, r *http.Request) {
	spans := s.tracer.Spans()
	if ts := r.URL.Query().Get("trace"); ts != "" {
		id, err := reqtrace.ParseTraceID(ts)
		if err != nil {
			http.Error(w, "bad trace parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		matched := spans[:0]
		for _, sp := range spans {
			if sp.TraceID == id {
				matched = append(matched, sp)
			}
		}
		spans = matched
	}
	writeJSON(w, struct {
		Stats reqtrace.TracerStats `json:"stats"`
		Spans []*reqtrace.Span     `json:"spans"`
	}{s.tracer.Stats(), spans})
}

func (s *server) handleSlowOps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.Sampler().SlowOps())
}

// handleTraceRate reports the sampler's stats; ?every=N adjusts the
// 1-in-N rate (0 disables) and ?slow=D (a Go duration) the slow-op
// threshold, at runtime.
func (s *server) handleTraceRate(w http.ResponseWriter, r *http.Request) {
	sp := s.ix.Sampler()
	q := r.URL.Query()
	if ev := q.Get("every"); ev != "" {
		n, err := strconv.Atoi(ev)
		if err != nil {
			http.Error(w, "bad every parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		sp.SetRate(n)
	}
	if sl := q.Get("slow"); sl != "" {
		d, err := time.ParseDuration(sl)
		if err != nil {
			http.Error(w, "bad slow parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		sp.SetSlowThreshold(d)
	}
	writeJSON(w, sp.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
