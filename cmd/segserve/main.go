// Command segserve exposes one index structure over HTTP together with
// its full observability surface: per-operation latency histograms and
// the paper's cost-model counters (SIMD comparisons, node visits, ...)
// as Prometheus text metrics, expvar JSON and Go's pprof profiles.
//
//	segserve -structure opt-segtrie -shards 16 -preload 100000
//
//	curl 'localhost:8080/put?key=42&value=answer'
//	curl 'localhost:8080/get?key=42'
//	curl 'localhost:8080/getbatch?keys=1,2,42'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'      # Prometheus text format 0.0.4
//	curl 'localhost:8080/debug/vars'   # expvar JSON
//
// Keys are uint64, values are strings. The index is wrapped in
// InstrumentedIndex (histograms + counters) and, with -shards >= 2, a
// ShardedIndex, so concurrent requests are safe.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	simdtree "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	structure := flag.String("structure", "segtree",
		"index structure: segtree, segtrie, opt-segtrie, btree")
	shards := flag.Int("shards", 16, "key-range shards (>= 2; 1 disables sharding)")
	preload := flag.Int("preload", 0, "preload this many consecutive keys before serving")
	flag.Parse()

	ix, err := newServer(*structure, *shards, *preload)
	if err != nil {
		log.Fatalf("segserve: %v", err)
	}
	log.Printf("segserve: %s with %d shards on %s (%d keys preloaded)",
		*structure, *shards, *addr, *preload)
	log.Fatal(http.ListenAndServe(*addr, ix.mux()))
}

// server owns the instrumented index and its HTTP handlers. It is split
// from main so tests can drive the mux through httptest.
type server struct {
	ix *simdtree.InstrumentedIndex[uint64, string]
}

var structures = map[string]simdtree.Structure{
	"segtree":     simdtree.StructureSegTree,
	"segtrie":     simdtree.StructureSegTrie,
	"opt-segtrie": simdtree.StructureOptimizedSegTrie,
	"btree":       simdtree.StructureBPlusTree,
}

func newServer(structure string, shards, preload int) (*server, error) {
	s, ok := structures[structure]
	if !ok {
		return nil, fmt.Errorf("unknown structure %q (want segtree, segtrie, opt-segtrie or btree)", structure)
	}
	ix := simdtree.NewInstrumentedIndex[uint64, string](
		simdtree.WithStructure(s), simdtree.WithShards(shards))
	for i := 0; i < preload; i++ {
		ix.Put(uint64(i), strconv.Itoa(i))
	}
	srv := &server{ix: ix}
	srv.ix.PublishExpvar("segserve")
	return srv, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/get", s.handleGet)
	mux.HandleFunc("/put", s.handlePut)
	mux.HandleFunc("/delete", s.handleDelete)
	mux.HandleFunc("/getbatch", s.handleGetBatch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// expvar and pprof register on http.DefaultServeMux; re-expose them on
	// our own mux so segserve works with a custom one.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func keyParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	k, err := strconv.ParseUint(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		http.Error(w, "bad or missing key parameter: "+err.Error(), http.StatusBadRequest)
		return 0, false
	}
	return k, true
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	v, found := s.ix.Get(k)
	if !found {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	fmt.Fprintln(w, v)
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	s.ix.Put(k, r.URL.Query().Get("value"))
	fmt.Fprintln(w, "ok")
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	if !s.ix.Delete(k) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *server) handleGetBatch(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(r.URL.Query().Get("keys"), ",")
	ks := make([]uint64, 0, len(parts))
	for _, p := range parts {
		k, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			http.Error(w, "bad keys parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		ks = append(ks, k)
	}
	vs, found := s.ix.GetBatch(ks)
	for i, k := range ks {
		if found[i] {
			fmt.Fprintf(w, "%d %s\n", k, vs[i])
		} else {
			fmt.Fprintf(w, "%d MISSING\n", k)
		}
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.ix.Snapshot()
	st := snap.Stats
	fmt.Fprintf(w, "keys %d\nheight %d\nnodes %d\nmemory_bytes %d\nkey_memory_bytes %d\n",
		st.Keys, st.Height, st.Nodes, st.MemoryBytes, st.KeyMemoryBytes)
	c := snap.Counters
	fmt.Fprintf(w, "simd_comparisons %d\nmask_evaluations %d\nnode_visits %d\nlevels_descended %d\nscalar_comparisons %d\n",
		c.SIMDComparisons, c.MaskEvaluations, c.NodeVisits, c.LevelsDescended, c.ScalarComparisons)
	for _, op := range snap.Ops {
		if op.Histogram.Count > 0 {
			fmt.Fprintf(w, "op_%s_count %d\nop_%s_mean_ns %d\n",
				op.Op, op.Histogram.Count, op.Op, op.Histogram.Mean().Nanoseconds())
		}
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.ix.WritePrometheus(w, "segserve")
}
