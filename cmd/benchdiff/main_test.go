package main

import (
	"math"
	"testing"

	"repro/internal/bench"
)

func load(t *testing.T, path string) []bench.Measurement {
	t.Helper()
	ms, err := readMeasurements(path)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

var defaults = thresholds{NsPct: 25, BytesPct: 10}

func TestCompareFlagsInjectedRegressions(t *testing.T) {
	d := compare(load(t, "testdata/old.json"), load(t, "testdata/new-regressed.json"), defaults)

	// segtree search 100→150 ns/op (+50%) and bytes-per-key 40→46 (+15%)
	// are over threshold; btree 200→210 (+5%) is under; the ratio drop and
	// the raw-bytes doubling are not gated units; zhouross removed,
	// opt-segtrie added.
	if len(d.Regressions) != 2 {
		t.Fatalf("regressions = %d, want 2: %+v", len(d.Regressions), d.Regressions)
	}
	byKey := make(map[string]row)
	for _, r := range d.Regressions {
		byKey[r.Key] = r
	}
	if r, ok := byKey["hits/segtree/5 MB/search"]; !ok || math.Abs(r.DeltaPct-50) > 1e-9 {
		t.Errorf("segtree ns/op regression missing or wrong delta: %+v", r)
	}
	if r, ok := byKey["memory/Seg-Trie/shape/bytes-per-key"]; !ok || math.Abs(r.DeltaPct-15) > 1e-9 {
		t.Errorf("bytes-per-key regression missing or wrong delta: %+v", r)
	}
	if len(d.Removed) != 1 || len(d.Added) != 1 {
		t.Errorf("removed/added = %v / %v, want one each", d.Removed, d.Added)
	}
}

func TestCompareCleanRunPasses(t *testing.T) {
	d := compare(load(t, "testdata/old.json"), load(t, "testdata/new-clean.json"), defaults)
	if len(d.Regressions) != 0 {
		t.Fatalf("clean run reported regressions: %+v", d.Regressions)
	}
	// zhouross 50→55 is +10%, under the 25% default — but a tighter
	// threshold must catch it.
	strict := compare(load(t, "testdata/old.json"), load(t, "testdata/new-clean.json"),
		thresholds{NsPct: 5, BytesPct: 10})
	if len(strict.Regressions) != 2 {
		t.Fatalf("strict thresholds found %d regressions, want 2 (zhouross +10%%, btree +7.5%%): %+v",
			len(strict.Regressions), strict.Regressions)
	}
}

func TestCompareUngatedUnitsNeverRegress(t *testing.T) {
	old := []bench.Measurement{
		{Experiment: "e", Structure: "s", Metric: "m", Value: 1, Unit: "ratio"},
		{Experiment: "e", Structure: "s", Metric: "f", Value: 10, Unit: "bytes"},
	}
	new_ := []bench.Measurement{
		{Experiment: "e", Structure: "s", Metric: "m", Value: 100, Unit: "ratio"},
		{Experiment: "e", Structure: "s", Metric: "f", Value: 10000, Unit: "bytes"},
	}
	d := compare(old, new_, defaults)
	if len(d.Regressions) != 0 {
		t.Fatalf("ungated units gated: %+v", d.Regressions)
	}
	for _, r := range d.Rows {
		if r.Gated {
			t.Errorf("row %s unexpectedly gated", r.Key)
		}
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	old := []bench.Measurement{{Experiment: "e", Structure: "s", Metric: "m", Unit: "ns/op"}}
	new_ := []bench.Measurement{{Experiment: "e", Structure: "s", Metric: "m", Value: 5, Unit: "ns/op"}}
	d := compare(old, new_, defaults)
	if len(d.Regressions) != 1 || !math.IsInf(d.Regressions[0].DeltaPct, 1) {
		t.Fatalf("0→5 should be an infinite-delta regression: %+v", d.Rows)
	}
	// 0→0 is no change.
	d = compare(old, []bench.Measurement{{Experiment: "e", Structure: "s", Metric: "m", Unit: "ns/op"}}, defaults)
	if len(d.Regressions) != 0 || d.Rows[0].DeltaPct != 0 {
		t.Fatalf("0→0 should not regress: %+v", d.Rows)
	}
}

func TestCompareAgainstCommittedBaselineShapeMetrics(t *testing.T) {
	// The committed baseline must carry the shape metrics benchdiff gates
	// on, so the soft CI gate has bytes-per-key rows to pair.
	ms, err := readMeasurements("../../BENCH_baseline.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var nsOp, bytesPerKey int
	for _, m := range ms {
		switch m.Unit {
		case "ns/op":
			nsOp++
		case "bytes/key":
			bytesPerKey++
		}
	}
	if nsOp == 0 || bytesPerKey == 0 {
		t.Fatalf("baseline lacks gated units: ns/op=%d bytes/key=%d", nsOp, bytesPerKey)
	}
	// Identical files never regress, whatever the thresholds.
	d := compare(ms, ms, thresholds{NsPct: 0, BytesPct: 0})
	if len(d.Regressions) != 0 || len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("self-compare not clean: %d regressions, %d added, %d removed",
			len(d.Regressions), len(d.Added), len(d.Removed))
	}
}

func TestReadMeasurementsErrors(t *testing.T) {
	if _, err := readMeasurements("testdata/does-not-exist.json"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := readMeasurements("main.go"); err == nil {
		t.Error("non-JSON file accepted")
	}
}
