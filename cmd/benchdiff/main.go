// Command benchdiff compares two BENCH_*.json measurement files (the
// machine-readable output of cmd/segbench) benchstat-style and gates
// the performance trajectory: it exits non-zero when any timed metric
// (ns/op) or footprint-density metric (bytes/key) regresses by more
// than its threshold. Other metrics — raw bytes, ratios, counts — are
// reported for context but never gate.
//
//	benchdiff -old BENCH_baseline.json -new BENCH_segbench.json
//	benchdiff -old a.json -new b.json -ns-threshold 10 -bytes-threshold 5
//	benchdiff -all -old a.json -new b.json     # print unchanged rows too
//
// Measurements pair up by (experiment, structure, class, metric, unit);
// entries present in only one file are listed as added/removed and do
// not gate. Exit status: 0 no regression, 1 regression over threshold,
// 2 usage or read error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/bench"
)

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_*.json (required)")
	newPath := flag.String("new", "", "candidate BENCH_*.json (required)")
	nsThreshold := flag.Float64("ns-threshold", 25,
		"fail on ns/op regressions above this percentage")
	bytesThreshold := flag.Float64("bytes-threshold", 10,
		"fail on bytes/key regressions above this percentage")
	showAll := flag.Bool("all", false, "print every paired metric, not only changed ones")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: both -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	oldMs, err := readMeasurements(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newMs, err := readMeasurements(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	d := compare(oldMs, newMs, thresholds{NsPct: *nsThreshold, BytesPct: *bytesThreshold})
	render(os.Stdout, d, *showAll)
	if len(d.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) over threshold\n", len(d.Regressions))
		os.Exit(1)
	}
}

// readMeasurements loads one BENCH JSON array.
func readMeasurements(path string) ([]bench.Measurement, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms []bench.Measurement
	if err := json.Unmarshal(raw, &ms); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ms, nil
}

// thresholds are the maximum tolerated regressions, in percent.
type thresholds struct {
	NsPct    float64 // ns/op metrics
	BytesPct float64 // bytes/key metrics
}

// row is one paired metric in the diff.
type row struct {
	Key      string // experiment/structure/class/metric
	Unit     string
	Old, New float64
	// DeltaPct is (new−old)/old × 100; +Inf when old is 0 and new is not.
	DeltaPct float64
	// Gated marks metrics whose unit participates in the regression gate.
	Gated bool
	// Regressed marks a gated row over its threshold.
	Regressed bool
}

// diff is the full comparison result.
type diff struct {
	Rows        []row
	Regressions []row
	Removed     []string // keys only in the baseline
	Added       []string // keys only in the candidate
}

// key pairs measurements across files. Unit is included so a metric
// whose unit changed pairs as removed+added rather than as a bogus
// delta.
func key(m bench.Measurement) string {
	return strings.Join([]string{m.Experiment, m.Structure, m.Class, m.Metric, m.Unit}, "/")
}

// gateThreshold returns the regression threshold for a unit, and
// whether the unit gates at all. Both gated units are lower-is-better.
func (t thresholds) gateThreshold(unit string) (float64, bool) {
	switch unit {
	case "ns/op":
		return t.NsPct, true
	case "bytes/key":
		return t.BytesPct, true
	default:
		return 0, false
	}
}

// compare pairs the two measurement sets and flags gated regressions.
func compare(oldMs, newMs []bench.Measurement, t thresholds) diff {
	oldBy := make(map[string]bench.Measurement, len(oldMs))
	for _, m := range oldMs {
		oldBy[key(m)] = m
	}
	var d diff
	seen := make(map[string]bool, len(newMs))
	for _, m := range newMs {
		k := key(m)
		seen[k] = true
		om, ok := oldBy[k]
		if !ok {
			d.Added = append(d.Added, k)
			continue
		}
		r := row{
			Key:  strings.Join([]string{m.Experiment, m.Structure, m.Class, m.Metric}, "/"),
			Unit: m.Unit, Old: om.Value, New: m.Value,
		}
		switch {
		case om.Value != 0:
			r.DeltaPct = (m.Value - om.Value) / om.Value * 100
		case m.Value != 0:
			r.DeltaPct = math.Inf(1)
		}
		if th, gated := t.gateThreshold(m.Unit); gated {
			r.Gated = true
			r.Regressed = r.DeltaPct > th
		}
		d.Rows = append(d.Rows, r)
		if r.Regressed {
			d.Regressions = append(d.Regressions, r)
		}
	}
	for _, m := range oldMs {
		if !seen[key(m)] {
			d.Removed = append(d.Removed, key(m))
		}
	}
	sort.Slice(d.Rows, func(i, j int) bool { return d.Rows[i].Key < d.Rows[j].Key })
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d
}

// render prints the benchstat-style table: changed gated rows always,
// everything else behind -all, then the regression summary.
func render(w *os.File, d diff, showAll bool) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tunit\told\tnew\tdelta\t")
	printed := 0
	for _, r := range d.Rows {
		if !showAll && !r.Gated {
			continue
		}
		mark := ""
		if r.Regressed {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%+.2f%%%s\t\n",
			r.Key, r.Unit, formatValue(r.Old), formatValue(r.New), r.DeltaPct, mark)
		printed++
	}
	tw.Flush()
	if printed == 0 {
		fmt.Fprintln(w, "(no paired gated metrics)")
	}
	for _, k := range d.Removed {
		fmt.Fprintf(w, "removed: %s\n", k)
	}
	for _, k := range d.Added {
		fmt.Fprintf(w, "added:   %s\n", k)
	}
	fmt.Fprintf(w, "%d metrics compared, %d regression(s)\n", len(d.Rows), len(d.Regressions))
}

// formatValue renders a measurement value compactly: integers without a
// fraction, everything else with two decimals.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
