package main

import (
	"context"
	"math"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/driver"
	"repro/internal/index"
	"repro/internal/segtree"
)

// TestCompareWorkloadRows pins the contract between the mixed-workload
// driver and benchdiff: Class:"workload" measurements pair and gate
// through the existing matching logic, with no benchdiff changes. The
// ns/op quantile rows gate; op counts (ops) and throughput (ops/s) are
// ungated context, so a throughput drop alone never fails the gate.
func TestCompareWorkloadRows(t *testing.T) {
	d := compare(load(t, "testdata/old-workload.json"),
		load(t, "testdata/new-workload-regressed.json"), defaults)

	// read-p99 4000→6000 is +50%, over the 25% ns/op threshold. The
	// throughput collapse (1.2M→0.4M ops/s) and the op-count drift are
	// ungated; every other quantile moved under threshold.
	if len(d.Regressions) != 1 {
		t.Fatalf("regressions = %d, want 1 (read-p99): %+v", len(d.Regressions), d.Regressions)
	}
	r := d.Regressions[0]
	if r.Key != "mixed/versioned-segtree-8shards/workload/read-p99" {
		t.Errorf("regressed key = %q", r.Key)
	}
	if math.Abs(r.DeltaPct-50) > 1e-9 {
		t.Errorf("read-p99 delta = %g%%, want +50%%", r.DeltaPct)
	}
	for _, row := range d.Rows {
		if (row.Unit == "ops" || row.Unit == "ops/s") && row.Gated {
			t.Errorf("ungated workload unit %q gates: %+v", row.Unit, row)
		}
	}
	if len(d.Added)+len(d.Removed) != 0 {
		t.Errorf("workload rows failed to pair: added=%v removed=%v", d.Added, d.Removed)
	}
}

// TestDriverMeasurementsPair runs the actual driver and feeds its
// Measurements output through compare twice, proving the rows the live
// producer emits are pair-stable across runs — the criterion that
// benchdiff gates workload latency without any changes to its matching
// logic.
func TestDriverMeasurementsPair(t *testing.T) {
	runOnce := func() []bench.Measurement {
		t.Helper()
		tgt := driver.NewIndexTarget[uint64, string](index.NewVersioned[uint64, string](func() index.Index[uint64, string] {
			return segtree.New[uint64, string](segtree.DefaultConfig[uint64]())
		}))
		spec, err := driver.ParseSpec("read=90,write=10;keys=500;clients=2;ops=3000")
		if err != nil {
			t.Fatal(err)
		}
		res, err := driver.Run(context.Background(), tgt, spec, func(k uint64) string {
			return strconv.FormatUint(k, 10)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Measurements("mixed-smoke", "versioned-segtree")
	}
	d := compare(runOnce(), runOnce(), defaults)
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("two identical-spec runs did not pair: added=%v removed=%v", d.Added, d.Removed)
	}
	gated, ungated := 0, 0
	for _, r := range d.Rows {
		if r.Gated {
			gated++
		} else {
			ungated++
		}
	}
	// read + write each emit p50/p99/p999 (gated) and an op count; plus
	// throughput.
	if gated != 6 || ungated != 3 {
		t.Errorf("gated/ungated = %d/%d, want 6/3", gated, ungated)
	}
}
