// Command simdvet is the repo's custom static-analysis driver. It speaks
// the (unpublished) vet command-line protocol of cmd/go, so it runs as
//
//	go vet -vettool=$(pwd)/bin/simdvet ./...
//
// and vets every package with the seven repo-specific analyzers of
// internal/analysis: hotalloc (zero-allocation hot paths), nopanic
// (error-returning library paths), traceguard (nil-guarded trace
// recording), evalmask (exhaustive bitmask evaluation), atomicmix (no
// mixed atomic/plain field access), publishguard (//simdtree:published
// values frozen after an atomic store) and ringmask (power-of-two ring
// capacities, masked slot indexes). See DESIGN.md §5c for the invariants
// and the //simdtree: annotation grammar. `simdvet -list` prints the
// suite, one analyzer per line.
//
// The protocol, mirrored from golang.org/x/tools/go/analysis/unitchecker
// without depending on it (the module is dependency-free): cmd/go queries
// `simdvet -flags` (JSON flag list) and `simdvet -V=full` (build ID for
// cache keying), then invokes `simdvet <flags> <dir>/vet.cfg` once per
// package with a JSON config naming the source files and the export data
// of every dependency. Diagnostics go to stderr as file:line:col:
// message; a non-zero exit fails go vet.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/evalmask"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/nopanic"
	"repro/internal/analysis/publishguard"
	"repro/internal/analysis/ringmask"
	"repro/internal/analysis/traceguard"
)

// analyzers is the suite simdvet runs; each can be disabled with
// -<name>=false on the go vet command line.
var analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	nopanic.Analyzer,
	traceguard.Analyzer,
	evalmask.Analyzer,
	atomicmix.Analyzer,
	publishguard.Analyzer,
	ringmask.Analyzer,
}

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg for each
// package (see buildVetConfig in cmd/go/internal/work/exec.go). Fields the
// suite does not need are kept for documentation value.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

func main() {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	version := fs.String("V", "", "print version and exit")
	flagsOut := fs.Bool("flags", false, "print analyzer flags in JSON")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	fs.Parse(os.Args[1:])

	switch {
	case *version == "full":
		// cmd/go parses this exact shape (see toolID in
		// cmd/go/internal/work/buildid.go): field 2 must read "version",
		// and a "devel" version must end in a buildID. Hash the binary so
		// rebuilding simdvet invalidates go vet's result cache.
		printVersion(progname)
		return
	case *version != "":
		fmt.Printf("%s version devel\n", progname)
		return
	case *list:
		// Human-readable suite listing, used by `make analyze` to show
		// which checks gate the build.
		fmt.Printf("%s: %d analyzers\n", progname, len(analyzers))
		for _, a := range analyzers {
			fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
		}
		return
	case *flagsOut:
		// go vet discovers pass-through flags with `simdvet -flags`.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, err := json.Marshal(out)
		if err != nil {
			fatalf("marshaling -flags: %v", err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fatalf("usage: %s [flags] vet.cfg\n"+
			"\t(run via go vet -vettool=%s ./...)", progname, progname)
	}

	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	diags, err := run(fs.Arg(0), active)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Position, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simdvet: "+format+"\n", args...)
	os.Exit(1)
}

func printVersion(progname string) {
	f, err := os.Open(os.Args[0])
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		progname, string(h.Sum(nil)[:16]))
}

// positioned is a diagnostic resolved to a printable file position.
type positioned struct {
	Position token.Position
	Message  string
}

// run loads and type-checks the package described by cfgPath and applies
// the analyzers. It writes the (empty) facts file cmd/go caches, so
// dependency vet actions are cached across runs.
func run(cfgPath string, active []*analysis.Analyzer) ([]positioned, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		// The suite computes no cross-package facts; an empty output file
		// still lets cmd/go cache dependency actions.
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only action: facts were requested, diagnostics were
		// not. Nothing more to do.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go already built: the
	// source import path maps through ImportMap to a canonical package
	// path, whose compiled package file (with export data) is listed in
	// PackageFile. The standard library's gc importer reads those.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	tcfg := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", goarch()),
	}
	info := analysis.NewInfo()
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	var out []positioned
	for _, a := range active {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, positioned{Position: fset.Position(d.Pos), Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return out, nil
}

func goarch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
