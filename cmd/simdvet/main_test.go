package main

import "testing"

// TestRegistry pins the analyzer suite: exactly the seven repo analyzers,
// each with a unique name (they double as go vet flag names), a non-empty
// doc line, and a Run function. A new analyzer that is written but not
// registered here never gates CI; this test turns that omission into a
// failure.
func TestRegistry(t *testing.T) {
	want := []string{
		"hotalloc",
		"nopanic",
		"traceguard",
		"evalmask",
		"atomicmix",
		"publishguard",
		"ringmask",
	}
	if len(analyzers) != len(want) {
		t.Fatalf("got %d analyzers registered, want %d", len(analyzers), len(want))
	}
	seen := make(map[string]bool, len(analyzers))
	for i, a := range analyzers {
		if a.Name != want[i] {
			t.Errorf("analyzers[%d] = %q, want %q", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("analyzer name %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has an empty Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has a nil Run", a.Name)
		}
	}
}
