// Command segbench regenerates every table and figure of the paper's
// evaluation (§5) on the software-SIMD reproduction. Run without flags to
// execute all experiments, or select one with -experiment.
//
//	segbench -experiment fig10 -probes 10000
//
// Experiments: table2, table3, fig9, fig10, fig11, memory, karysearch, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: table2, table3, fig9, fig10, fig11, memory, karysearch, all")
	probes := flag.Int("probes", 10000, "random searches per measurement (paper: 10,000)")
	rounds := flag.Int("rounds", 3, "measurement rounds; fastest is reported")
	seed := flag.Int64("seed", 1, "workload seed")
	fig11Keys := flag.Int("fig11keys", 20000000, "maximum keys per depth step in Figure 11")
	memKeys := flag.Int("memkeys", 1638400, "consecutive keys for the memory experiment (paper: ~1.6 M)")
	flag.Parse()

	o := bench.Options{Probes: *probes, Rounds: *rounds, Seed: *seed}

	run := func(name, title, body string) {
		fmt.Printf("== %s — %s ==\n%s\n", name, title, body)
	}

	selected := func(name string) bool { return *experiment == "all" || *experiment == name }

	any := false
	if selected("table2") {
		any = true
		run("Table 2", "k values for a 128-bit SIMD register", bench.Table2())
	}
	if selected("table3") {
		any = true
		run("Table 3", "node characteristics", bench.Table3())
	}
	if selected("fig9") {
		any = true
		run("Figure 9", "bitmask evaluation algorithms, 8-bit Seg-Tree", bench.Figure9(o))
	}
	if selected("fig10") {
		any = true
		run("Figure 10", "Seg-Tree search: binary vs. BF-SIMD vs. DF-SIMD", bench.Figure10(o))
	}
	if selected("fig11") {
		any = true
		run("Figure 11", "Seg-Tree vs. Seg-Trie speedup over B+-Tree, 64-bit keys",
			bench.Figure11(o, *fig11Keys))
	}
	if selected("memory") {
		any = true
		run("Memory", "key-storage reduction (abstract: 8x for the Seg-Trie)",
			bench.Memory(*memKeys))
	}
	if selected("karysearch") {
		any = true
		run("k-ary search", "flat sorted arrays, §2.2 micro-benchmark",
			bench.KarySearch(o, []int{256, 4096, 65536, 1 << 20}))
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}
