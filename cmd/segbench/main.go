// Command segbench regenerates every table and figure of the paper's
// evaluation (§5) on the software-SIMD reproduction, plus the module's
// own extension experiments. Run without flags to execute all
// experiments, or select one with -experiment.
//
//	segbench -experiment fig10 -probes 10000
//	segbench -experiment batch -json BENCH_batch.json
//
// Experiments: table2, table3, fig9, fig10, fig11, memory, karysearch,
// batch, sharded, contention, all. With -json PATH, every measurement is
// also written to PATH as a machine-readable JSON array (see
// internal/bench.Measurement).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: table2, table3, fig9, fig10, fig11, memory, karysearch, batch, sharded, contention, all")
	probes := flag.Int("probes", 10000, "random searches per measurement (paper: 10,000)")
	rounds := flag.Int("rounds", 3, "measurement rounds; fastest is reported")
	seed := flag.Int64("seed", 1, "workload seed")
	fig11Keys := flag.Int("fig11keys", 20000000, "maximum keys per depth step in Figure 11")
	memKeys := flag.Int("memkeys", 1638400, "consecutive keys for the memory experiment (paper: ~1.6 M)")
	jsonPath := flag.String("json", "", "also write all measurements to this file as a JSON array")
	metrics := flag.Bool("metrics", false,
		"record per-search cost-model counters (SIMD comparisons, node visits, ...) into the -json output via an extra untimed probe pass per structure")
	flag.Parse()

	o := bench.Options{Probes: *probes, Rounds: *rounds, Seed: *seed, Metrics: *metrics}
	if *jsonPath != "" {
		o.Rec = &bench.Recorder{}
	} else if *metrics {
		fmt.Fprintln(os.Stderr, "segbench: -metrics has no effect without -json (counters are recorded, not tabulated)")
	}

	run := func(name, title, body string) {
		fmt.Printf("== %s — %s ==\n%s\n", name, title, body)
	}

	selected := func(name string) bool { return *experiment == "all" || *experiment == name }

	any := false
	if selected("table2") {
		any = true
		run("Table 2", "k values for a 128-bit SIMD register", bench.Table2())
	}
	if selected("table3") {
		any = true
		run("Table 3", "node characteristics", bench.Table3())
	}
	if selected("fig9") {
		any = true
		run("Figure 9", "bitmask evaluation algorithms, 8-bit Seg-Tree", bench.Figure9(o))
	}
	if selected("fig10") {
		any = true
		run("Figure 10", "Seg-Tree search: binary vs. BF-SIMD vs. DF-SIMD", bench.Figure10(o))
	}
	if selected("fig11") {
		any = true
		run("Figure 11", "Seg-Tree vs. Seg-Trie speedup over B+-Tree, 64-bit keys",
			bench.Figure11(o, *fig11Keys))
	}
	if selected("memory") {
		any = true
		run("Memory", "key-storage reduction (abstract: 8x for the Seg-Trie)",
			bench.Memory(*memKeys, o.Rec))
	}
	if selected("karysearch") {
		any = true
		run("k-ary search", "flat sorted arrays, §2.2 micro-benchmark",
			bench.KarySearch(o, []int{256, 4096, 65536, 1 << 20}))
	}
	if selected("batch") {
		any = true
		run("Batch", "level-wise batched search vs. per-probe Get", bench.Batch(o))
	}
	if selected("sharded") {
		any = true
		run("Sharded", "sharded vs. global-lock concurrent puts", bench.Sharded(o))
	}
	if selected("contention") {
		any = true
		run("Contention", "reader latency with vs. without a concurrent writer",
			bench.Contention(o))
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
	if o.Rec != nil {
		if err := o.Rec.WriteJSONFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d measurements to %s\n", len(o.Rec.Measurements()), *jsonPath)
	}
}
