package simdtree

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/index"
	"repro/internal/segtree"
	"repro/internal/segtrie"
)

// This file is the functional-options construction surface of the facade.
// Every structure constructor accepts the same Option type; options that
// do not apply to a given constructor panic with a pointer to the right
// one, so misconfiguration fails loudly at construction, not silently at
// search time.
//
//	t := simdtree.NewSegTree[uint64, string](
//		simdtree.WithLayout(simdtree.DepthFirst),
//		simdtree.WithEvaluator(simdtree.Popcount),
//	)
//	ix := simdtree.NewIndex[uint64, string](
//		simdtree.WithStructure(simdtree.StructureOptimizedSegTrie),
//		simdtree.WithShards(16),
//		simdtree.WithInstrumentation(true),
//	)

// Structure selects which index structure NewIndex builds.
type Structure int

const (
	// StructureSegTree is the paper's Segment-Tree (§3) — the default.
	StructureSegTree Structure = iota
	// StructureSegTrie is the Segment-Trie (§4).
	StructureSegTrie
	// StructureOptimizedSegTrie is the optimized Segment-Trie (§4, lazy
	// expansion).
	StructureOptimizedSegTrie
	// StructureBPlusTree is the baseline B+-Tree with binary search.
	StructureBPlusTree
)

// String names the structure as the benchmarks do.
func (s Structure) String() string {
	switch s {
	case StructureSegTree:
		return "segtree"
	case StructureSegTrie:
		return "segtrie"
	case StructureOptimizedSegTrie:
		return "opt-segtrie"
	case StructureBPlusTree:
		return "btree"
	default:
		return "unknown"
	}
}

// options accumulates what the With* functions set. Set-flags distinguish
// "not configured" from zero values, so defaults stay per-structure.
type options struct {
	structure    Structure
	structureSet bool
	layout       Layout
	layoutSet    bool
	evaluator    Evaluator
	evaluatorSet bool
	leafCap      int
	branchCap    int
	shards       int
	snapshots    bool
	instrument   bool
	counters     bool
}

// Option configures a constructor. The same Option type is accepted by
// every constructor of the facade; see the individual With* functions for
// which constructors understand them.
type Option func(*options)

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// reject panics when o carries a setting the named constructor cannot
// honour, naming the constructor that can.
func (o *options) reject(constructor string) {
	fail := func(opt, hint string) {
		panic(fmt.Sprintf("simdtree: %s does not apply to %s; %s", opt, constructor, hint)) //simdtree:allowpanic misuse of the options API is a programming error, caught at construction
	}
	useNewIndex := "use NewIndex instead"
	if o.structureSet {
		fail("WithStructure", useNewIndex)
	}
	if o.shards > 0 {
		fail("WithShards", useNewIndex+" or wrap with NewShardedIndex")
	}
	if o.snapshots {
		fail("WithSnapshots", useNewIndex+" or wrap with NewVersionedIndex")
	}
	if o.instrument {
		fail("WithInstrumentation", useNewIndex+" or NewInstrumentedIndex")
	}
}

// WithLayout selects the k-ary linearization (BreadthFirst or DepthFirst)
// of SegTree, SegTrie, OptimizedSegTrie and NewIndex nodes.
func WithLayout(l Layout) Option {
	return func(o *options) { o.layout = l; o.layoutSet = true }
}

// WithEvaluator selects the bitmask-evaluation algorithm of SegTree,
// SegTrie, OptimizedSegTrie and NewIndex nodes.
func WithEvaluator(e Evaluator) Option {
	return func(o *options) { o.evaluator = e; o.evaluatorSet = true }
}

// WithLeafCap overrides the per-leaf key capacity of SegTree, BPlusTree
// and tree-structured NewIndex instances (default: the paper's Table 3
// sizing). The tries have fixed 256-way nodes and reject this option.
func WithLeafCap(n int) Option {
	return func(o *options) { o.leafCap = n }
}

// WithBranchCap overrides the per-branch key capacity of SegTree,
// BPlusTree and tree-structured NewIndex instances.
func WithBranchCap(n int) Option {
	return func(o *options) { o.branchCap = n }
}

// WithStructure selects the structure NewIndex builds (default
// StructureSegTree). Only NewIndex understands it; the concrete
// constructors already name their structure.
func WithStructure(s Structure) Option {
	return func(o *options) { o.structure = s; o.structureSet = true }
}

// WithShards makes NewIndex wrap the structure in a ShardedIndex with n
// key-range shards (each an MVCC snapshot publisher: lock-free reads,
// per-shard serialized writers; safe for concurrent use). n < 2 means
// unsharded.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithSnapshots makes NewIndex wrap the structure in a VersionedIndex:
// MVCC copy-on-write snapshot publication, under which every read runs
// lock-free against an immutable published version and the index is safe
// for concurrent use. WithShards(n ≥ 2) implies it — each shard is a
// versioned publisher already — so the option matters for the unsharded
// case.
func WithSnapshots() Option {
	return func(o *options) { o.snapshots = true }
}

// WithInstrumentation makes NewIndex wrap the structure in an
// InstrumentedIndex recording per-operation latency histograms. When
// counters is true the wrapper also attaches cost-model Counters (SIMD
// comparisons, node visits, ...) scoped to its operations.
func WithInstrumentation(counters bool) Option {
	return func(o *options) { o.instrument = true; o.counters = counters }
}

// segTreeConfig resolves options against the Seg-Tree defaults.
func (o *options) segTreeConfig(forKey SegTreeConfig) SegTreeConfig {
	cfg := forKey
	if o.layoutSet {
		cfg.Layout = o.layout
	}
	if o.evaluatorSet {
		cfg.Evaluator = o.evaluator
	}
	if o.leafCap > 0 {
		cfg.LeafCap = o.leafCap
	}
	if o.branchCap > 0 {
		cfg.BranchCap = o.branchCap
	}
	return cfg
}

// segTrieConfig resolves options against the Seg-Trie defaults.
func (o *options) segTrieConfig(constructor string) SegTrieConfig {
	if o.leafCap > 0 || o.branchCap > 0 {
		panic(fmt.Sprintf("simdtree: WithLeafCap/WithBranchCap do not apply to %s: trie nodes are fixed 256-way", constructor)) //simdtree:allowpanic misuse of the options API is a programming error, caught at construction
	}
	cfg := segtrie.DefaultConfig()
	if o.layoutSet {
		cfg.Layout = o.layout
	}
	if o.evaluatorSet {
		cfg.Evaluator = o.evaluator
	}
	return cfg
}

// bPlusTreeConfig resolves options against the B+-Tree defaults.
func (o *options) bPlusTreeConfig(forKey BPlusTreeConfig, constructor string) BPlusTreeConfig {
	if o.layoutSet || o.evaluatorSet {
		panic(fmt.Sprintf("simdtree: WithLayout/WithEvaluator do not apply to %s: the baseline searches nodes with scalar binary search", constructor)) //simdtree:allowpanic misuse of the options API is a programming error, caught at construction
	}
	cfg := forKey
	if o.leafCap > 0 {
		cfg.LeafCap = o.leafCap
	}
	if o.branchCap > 0 {
		cfg.BranchCap = o.branchCap
	}
	return cfg
}

// NewIndex builds any structure of the module behind the common Index
// interface: the structure kind, node parameters, sharding and
// instrumentation are all selected with options. The zero-option call
// returns a default Seg-Tree.
//
// Wrapping order is Instrumented(Sharded(structure)): histograms then
// cover whole sharded operations, and with WithShards(n ≥ 2) the result
// is safe for concurrent use.
func NewIndex[K Key, V any](opts ...Option) Index[K, V] {
	o := buildOptions(opts)
	newOne := func() Index[K, V] {
		switch o.structure {
		case StructureSegTrie:
			return segtrie.New[K, V](o.segTrieConfig("NewIndex(StructureSegTrie)"))
		case StructureOptimizedSegTrie:
			return segtrie.NewOptimized[K, V](o.segTrieConfig("NewIndex(StructureOptimizedSegTrie)"))
		case StructureBPlusTree:
			return btree.New[K, V](o.bPlusTreeConfig(btree.DefaultConfig[K](), "NewIndex(StructureBPlusTree)"))
		default:
			return segtree.New[K, V](o.segTreeConfig(segtree.DefaultConfig[K]()))
		}
	}
	var ix Index[K, V]
	switch {
	case o.shards >= 2:
		// Sharded shards are each a versioned snapshot publisher, so
		// WithSnapshots is already implied.
		ix = index.NewSharded[K, V](o.shards, newOne)
	case o.snapshots:
		ix = index.NewVersioned[K, V](newOne)
	default:
		ix = newOne()
	}
	if o.instrument {
		ix = index.NewInstrumented(ix, o.counters)
	}
	return ix
}

// NewInstrumentedIndex is NewIndex with the instrumentation wrapper
// implied, returned as the concrete *InstrumentedIndex so callers reach
// Snapshot, WritePrometheus and the runtime toggle without assertions.
// Cost-model counters are attached by default; pass
// WithInstrumentation(false) for latency histograms only.
func NewInstrumentedIndex[K Key, V any](opts ...Option) *InstrumentedIndex[K, V] {
	o := buildOptions(opts)
	counters := true
	if o.instrument {
		counters = o.counters
	}
	inner := NewIndex[K, V](append(opts, func(o *options) { o.instrument = false })...)
	return index.NewInstrumented(inner, counters)
}
