package simdtree

import (
	"repro/internal/concurrent"
	"repro/internal/keys"
	"repro/internal/zhouross"
)

// Extensions beyond the paper's core contribution: the Zhou-Ross SIMD
// search strategies it discusses as related work (§6), and thread-safe
// access, the first of its future-work directions (§7).

// ZhouRossList is a sorted list searchable with the three SIMD strategies
// of Zhou and Ross (SIGMOD 2002): full-bandwidth sequential scan, improved
// binary search, and their hybrid. Unlike the k-ary search tree it keeps
// keys in plain sorted order.
type ZhouRossList[K Key] = zhouross.List[K]

// NewZhouRossList builds a Zhou-Ross searchable list from strictly
// ascending keys; it panics on unsorted input.
func NewZhouRossList[K Key](sorted []K) *ZhouRossList[K] {
	return zhouross.New(sorted)
}

// Map is the common mutable interface of every index in this module.
type Map[K Key, V any] = concurrent.Map[K, V]

// LockedMap wraps any Map with a readers-writer lock: lookups run
// concurrently, mutations exclusively.
type LockedMap[K Key, V any] = concurrent.Locked[K, V]

// NewLockedMap wraps m for concurrent use. The caller must not use m
// directly afterwards.
func NewLockedMap[K Key, V any](m Map[K, V]) *LockedMap[K, V] {
	return concurrent.NewLocked(m)
}

// ParallelSearch probes a read-only index from several goroutines and
// returns the number of hits. Searches are side-effect free, so a
// read-only index needs no locking.
func ParallelSearch[K keys.Key, V any](idx interface{ Get(K) (V, bool) }, probes []K, workers int) int {
	return concurrent.ParallelSearch[K, V](idx, probes, workers)
}
