package simdtree

import (
	"repro/internal/concurrent"
	"repro/internal/index"
	"repro/internal/keys"
	"repro/internal/obs"
	"repro/internal/zhouross"
)

// Extensions beyond the paper's core contribution: the Zhou-Ross SIMD
// search strategies it discusses as related work (§6), and thread-safe
// access, the first of its future-work directions (§7).

// Index is the common interface of every index structure in this module —
// SegTree, SegTrie, OptimizedSegTrie, BPlusTree and ShardedIndex all
// satisfy it: point and batched lookups, mutation, ordered iteration and
// a structure-independent statistics summary.
type Index[K Key, V any] = index.Index[K, V]

// IndexStats is the structure-independent shape/memory summary every
// Index reports through IndexStats().
type IndexStats = index.Stats

// ShardedIndex key-range-partitions any Index across N shards, each an
// independent MVCC snapshot publisher — the scalable concurrent path:
// writes to different key ranges proceed in parallel, and reads are
// lock-free everywhere (each read pins its shard's published version).
// Ordered operations stay ordered because the partition follows key
// order.
type ShardedIndex[K Key, V any] = index.Sharded[K, V]

// NewShardedIndex builds a sharded index over shardCount instances
// produced by newIndex (one per shard, each must start empty):
//
//	s := simdtree.NewShardedIndex[uint64, string](16, func() simdtree.Index[uint64, string] {
//		return simdtree.NewSegTree[uint64, string]()
//	})
func NewShardedIndex[K Key, V any](shardCount int, newIndex func() Index[K, V]) *ShardedIndex[K, V] {
	return index.NewSharded[K, V](shardCount, newIndex)
}

// VersionedIndex wraps any single index in MVCC copy-on-write snapshot
// publication: Get/GetBatch and every other read run lock-free against
// an immutable published version while one writer at a time builds and
// atomically publishes the next. It is the unsharded concurrent index;
// combine with sharding via NewIndex(WithShards(n)), whose shards are
// each a VersionedIndex already.
type VersionedIndex[K Key, V any] = index.Versioned[K, V]

// NewVersionedIndex wraps an index built by newIndex in MVCC snapshot
// publication:
//
//	ix := simdtree.NewVersionedIndex[uint64, string](func() simdtree.Index[uint64, string] {
//		return simdtree.NewSegTree[uint64, string]()
//	})
//
// Every tree newIndex returns must start empty.
func NewVersionedIndex[K Key, V any](newIndex func() Index[K, V]) *VersionedIndex[K, V] {
	return index.NewVersioned[K, V](newIndex)
}

// IndexSnapshotView is a pinned, immutable read view of a versioned or
// sharded index: every read observes exactly the version(s) pinned at
// acquisition, lock-free, no matter how far concurrent writers advance
// the live index. Release it when done.
type IndexSnapshotView[K Key, V any] = index.Snapshot[K, V]

// Snapshotter is satisfied by every index that can hand out pinned
// copy-on-write read views: VersionedIndex and ShardedIndex directly,
// and InstrumentedIndex via its ReadSnapshot method.
type Snapshotter[K Key, V any] = index.Snapshotter[K, V]

// MVCCStats is the point-in-time health of an index's snapshot
// publication: current versions, pinned readers, retired versions, and
// the publish/reclaim/clone counters with publish latency.
type MVCCStats = obs.MVCCSnapshot

// TakeSnapshot returns a pinned read view of ix when it publishes
// versions (VersionedIndex, ShardedIndex, or an InstrumentedIndex over
// either); ok is false otherwise. The caller must Release the view.
func TakeSnapshot[K Key, V any](ix Index[K, V]) (*IndexSnapshotView[K, V], bool) {
	switch t := ix.(type) {
	case Snapshotter[K, V]:
		return t.Snapshot(), true
	case *InstrumentedIndex[K, V]:
		return t.ReadSnapshot()
	}
	return nil, false
}

// ZhouRossList is a sorted list searchable with the three SIMD strategies
// of Zhou and Ross (SIGMOD 2002): full-bandwidth sequential scan, improved
// binary search, and their hybrid. Unlike the k-ary search tree it keeps
// keys in plain sorted order.
type ZhouRossList[K Key] = zhouross.List[K]

// NewZhouRossList builds a Zhou-Ross searchable list from strictly
// ascending keys; it panics on unsorted input. NewZhouRossListChecked is
// the error-returning form.
func NewZhouRossList[K Key](sorted []K) *ZhouRossList[K] {
	return zhouross.New(sorted)
}

// NewZhouRossListChecked builds a Zhou-Ross searchable list, returning an
// error wrapping ErrUnsorted instead of panicking on unsorted input.
func NewZhouRossListChecked[K Key](sorted []K) (*ZhouRossList[K], error) {
	return zhouross.NewChecked(sorted)
}

// ErrUnsorted reports construction input whose keys are not strictly
// ascending. The Checked constructors wrap it with position context;
// match with errors.Is.
var ErrUnsorted = keys.ErrUnsorted

// Map is the common mutable interface of every index in this module.
type Map[K Key, V any] = concurrent.Map[K, V]

// LockedMap wraps any Map with a readers-writer lock: lookups run
// concurrently, mutations exclusively.
type LockedMap[K Key, V any] = concurrent.Locked[K, V]

// NewLockedMap wraps m for concurrent use. The caller must not use m
// directly afterwards.
func NewLockedMap[K Key, V any](m Map[K, V]) *LockedMap[K, V] {
	return concurrent.NewLocked(m)
}

// ParallelSearch probes a read-only index from several goroutines and
// returns the number of hits. Searches are side-effect free, so a
// read-only index needs no locking.
func ParallelSearch[K keys.Key, V any](idx interface{ Get(K) (V, bool) }, probes []K, workers int) int {
	return concurrent.ParallelSearch[K, V](idx, probes, workers)
}
