package simdtree

import (
	"repro/internal/concurrent"
	"repro/internal/index"
	"repro/internal/keys"
	"repro/internal/zhouross"
)

// Extensions beyond the paper's core contribution: the Zhou-Ross SIMD
// search strategies it discusses as related work (§6), and thread-safe
// access, the first of its future-work directions (§7).

// Index is the common interface of every index structure in this module —
// SegTree, SegTrie, OptimizedSegTrie, BPlusTree and ShardedIndex all
// satisfy it: point and batched lookups, mutation, ordered iteration and
// a structure-independent statistics summary.
type Index[K Key, V any] = index.Index[K, V]

// IndexStats is the structure-independent shape/memory summary every
// Index reports through IndexStats().
type IndexStats = index.Stats

// ShardedIndex key-range-partitions any Index across N shards with
// per-shard readers-writer locks — the scalable concurrent write path
// (writes to different key ranges proceed in parallel, unlike the single
// global lock of LockedMap). Ordered operations stay ordered because the
// partition follows key order.
type ShardedIndex[K Key, V any] = index.Sharded[K, V]

// NewShardedIndex builds a sharded index over shardCount instances
// produced by newIndex (one per shard, each must start empty):
//
//	s := simdtree.NewShardedIndex[uint64, string](16, func() simdtree.Index[uint64, string] {
//		return simdtree.NewSegTree[uint64, string]()
//	})
func NewShardedIndex[K Key, V any](shardCount int, newIndex func() Index[K, V]) *ShardedIndex[K, V] {
	return index.NewSharded[K, V](shardCount, newIndex)
}

// ZhouRossList is a sorted list searchable with the three SIMD strategies
// of Zhou and Ross (SIGMOD 2002): full-bandwidth sequential scan, improved
// binary search, and their hybrid. Unlike the k-ary search tree it keeps
// keys in plain sorted order.
type ZhouRossList[K Key] = zhouross.List[K]

// NewZhouRossList builds a Zhou-Ross searchable list from strictly
// ascending keys; it panics on unsorted input. NewZhouRossListChecked is
// the error-returning form.
func NewZhouRossList[K Key](sorted []K) *ZhouRossList[K] {
	return zhouross.New(sorted)
}

// NewZhouRossListChecked builds a Zhou-Ross searchable list, returning an
// error wrapping ErrUnsorted instead of panicking on unsorted input.
func NewZhouRossListChecked[K Key](sorted []K) (*ZhouRossList[K], error) {
	return zhouross.NewChecked(sorted)
}

// ErrUnsorted reports construction input whose keys are not strictly
// ascending. The Checked constructors wrap it with position context;
// match with errors.Is.
var ErrUnsorted = keys.ErrUnsorted

// Map is the common mutable interface of every index in this module.
type Map[K Key, V any] = concurrent.Map[K, V]

// LockedMap wraps any Map with a readers-writer lock: lookups run
// concurrently, mutations exclusively.
type LockedMap[K Key, V any] = concurrent.Locked[K, V]

// NewLockedMap wraps m for concurrent use. The caller must not use m
// directly afterwards.
func NewLockedMap[K Key, V any](m Map[K, V]) *LockedMap[K, V] {
	return concurrent.NewLocked(m)
}

// ParallelSearch probes a read-only index from several goroutines and
// returns the number of hits. Searches are side-effect free, so a
// read-only index needs no locking.
func ParallelSearch[K keys.Key, V any](idx interface{ Get(K) (V, bool) }, probes []K, workers int) int {
	return concurrent.ParallelSearch[K, V](idx, probes, workers)
}
