package simdtree_test

// Cost of always-on sampled tracing at the rates that matter: no sampler
// attached (histograms only — the sweep's baseline), sampler attached
// but off (adds one atomic pointer load + modulo per Get), the
// recommended production rate of 1-in-1024, and always-on (rate 1, every
// Get allocates and records a full trace). BenchmarkGet is the
// bare-structure reference. Run with:
//
//	go test -run=^$ -bench='BenchmarkGet$|BenchmarkTraceSampling' -benchtime=2s .

import (
	"math/rand"
	"testing"

	simdtree "repro"
)

func traceBenchProbes() []uint64 {
	rng := rand.New(rand.NewSource(42))
	probes := make([]uint64, 4096)
	for i := range probes {
		probes[i] = uint64(rng.Intn(1 << 16))
	}
	return probes
}

func traceBenchTree() simdtree.Index[uint64, uint64] {
	t := simdtree.NewSegTree[uint64, uint64]()
	for i := uint64(0); i < 1<<16; i++ {
		t.Put(i, i)
	}
	return t
}

func runTraceBench(b *testing.B, ix simdtree.Index[uint64, uint64], probes []uint64) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ix.Get(probes[i%len(probes)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkGet(b *testing.B) {
	runTraceBench(b, traceBenchTree(), traceBenchProbes())
}

func BenchmarkTraceSampling(b *testing.B) {
	probes := traceBenchProbes()
	for _, bc := range []struct {
		name string
		rate int
	}{
		{"no-sampler", -1},
		{"off", 0},
		{"1-in-1024", 1024},
		{"always-on", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			// Instrumentation stays on (sampling rides on it); the sweep
			// reads against the no-sampler case, which pays histograms only.
			ix := simdtree.WrapInstrumented(traceBenchTree(), false)
			if bc.rate >= 0 {
				ix.EnableSampling(bc.rate, 0)
			}
			runTraceBench(b, ix, probes)
		})
	}
}

// BenchmarkExplain prices one on-demand traced descent, allocations
// included — the cost of a /debug/explain request.
func BenchmarkExplain(b *testing.B) {
	tree := traceBenchTree()
	probes := traceBenchProbes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := simdtree.Explain[uint64, uint64](tree, probes[i%len(probes)])
		if !tr.Found {
			b.Fatal("miss")
		}
	}
}
