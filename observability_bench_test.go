package simdtree_test

// Overhead of the instrumentation wrapper, measured three ways: the bare
// structure, the wrapper with recording switched off (the atomic-load
// fast path that must stay within 5% of bare), and the wrapper recording
// histograms + counters. Run with:
//
//	go test -run=^$ -bench=BenchmarkInstrumentedOverhead -benchtime=2s .

import (
	"math/rand"
	"testing"

	simdtree "repro"
)

func BenchmarkInstrumentedOverhead(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(42))
	probes := make([]uint64, 4096)
	for i := range probes {
		probes[i] = uint64(rng.Intn(n))
	}
	build := func() simdtree.Index[uint64, uint64] {
		t := simdtree.NewSegTree[uint64, uint64]()
		for i := uint64(0); i < n; i++ {
			t.Put(i, i)
		}
		return t
	}
	run := func(b *testing.B, ix simdtree.Index[uint64, uint64]) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := ix.Get(probes[i%len(probes)]); !ok {
				b.Fatal("miss")
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, build()) })
	b.Run("wrapped-off", func(b *testing.B) {
		ix := simdtree.WrapInstrumented(build(), true)
		ix.SetEnabled(false)
		run(b, ix)
	})
	b.Run("wrapped-hist", func(b *testing.B) {
		run(b, simdtree.WrapInstrumented(build(), false))
	})
	b.Run("wrapped-hist+counters", func(b *testing.B) {
		run(b, simdtree.WrapInstrumented(build(), true))
	})
}
