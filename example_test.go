package simdtree_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	simdtree "repro"
)

func ExampleNewSegTree() {
	tree := simdtree.NewSegTree[uint32, string]()
	tree.Put(42, "answer")
	tree.Put(7, "lucky")
	if v, ok := tree.Get(42); ok {
		fmt.Println(v)
	}
	fmt.Println(tree.Len())
	// Output:
	// answer
	// 2
}

func ExampleSegTree_Scan() {
	tree := simdtree.NewSegTree[uint32, int]()
	for i := 0; i < 10; i++ {
		tree.Put(uint32(i*10), i)
	}
	tree.Scan(25, 55, func(k uint32, v int) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 30 3
	// 40 4
	// 50 5
}

func ExampleSegTree_IterRange() {
	tree := simdtree.NewSegTree[uint32, string]()
	tree.Put(1, "a")
	tree.Put(2, "b")
	tree.Put(3, "c")
	it := tree.IterRange(2, 3)
	for it.Next() {
		fmt.Println(it.Key(), it.Value())
	}
	// Output:
	// 2 b
	// 3 c
}

func ExampleBuildKaryTree() {
	// The paper's running example: k=3 for 64-bit keys, so each SIMD
	// comparison tests two separators at once.
	sorted := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	kt := simdtree.BuildKaryTree(sorted, simdtree.BreadthFirst)
	fmt.Println(kt.Linearized())
	fmt.Println(kt.Search(5, simdtree.Popcount)) // first key > 5
	// Output:
	// [3 6 1 2 4 5 7 8]
	// 5
}

func ExampleNewSegTrie() {
	trie := simdtree.NewSegTrie[uint64, string]()
	trie.Put(1000, "tuple-1000")
	trie.Put(1001, "tuple-1001")
	fmt.Println(trie.Levels()) // fixed height: 8 segments for 64-bit keys
	if v, ok := trie.Get(1001); ok {
		fmt.Println(v)
	}
	// Output:
	// 8
	// tuple-1001
}

func ExampleNewOptimizedSegTrie() {
	trie := simdtree.NewOptimizedSegTrie[uint64, int]()
	for i := 0; i < 256; i++ {
		trie.Put(uint64(i), i)
	}
	// Consecutive keys collapse the eight nominal levels into one node.
	st := trie.Stats()
	fmt.Println(st.Nodes, st.Height, st.OmittedLevels)
	// Output:
	// 1 1 7
}

func ExampleNewZhouRossList() {
	l := simdtree.NewZhouRossList([]uint32{10, 20, 30, 40, 50})
	fmt.Println(l.BinarySearch(25))     // first index with key > 25
	fmt.Println(l.SequentialSearch(25)) // same answer, different strategy
	// Output:
	// 2
	// 2
}

func ExampleSegTree_Serialize() {
	tree := simdtree.NewSegTree[uint32, uint64]()
	for i := uint32(0); i < 100; i++ {
		tree.Put(i, uint64(i)*2)
	}
	encode := func(w io.Writer, v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		_, err := w.Write(b[:])
		return err
	}
	decode := func(r io.Reader) (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	var buf bytes.Buffer
	if err := tree.Serialize(&buf, encode); err != nil {
		panic(err)
	}
	restored, err := simdtree.DeserializeSegTree[uint32, uint64](&buf, decode)
	if err != nil {
		panic(err)
	}
	v, _ := restored.Get(21)
	fmt.Println(restored.Len(), v)
	// Output:
	// 100 42
}
