package simdtree_test

// Tests pinning the per-operation tracing surface to the paper's §4
// comparison model: a (partially) full 17-ary trie node costs exactly 2
// SIMD comparisons, a full 64-bit descent over 17-ary nodes 8·2 = 16,
// and a fully occupied 256-key node zero (direct indexing fast path).

import (
	"strings"
	"testing"
	"time"

	simdtree "repro"
)

// TestExplainTrieNodeTwoCompares pins §4: a trie node holding 17 partial
// keys is a two-level 17-ary search tree, resolved with exactly 2 SIMD
// comparisons.
func TestExplainTrieNodeTwoCompares(t *testing.T) {
	trie := simdtree.NewSegTrie[uint16, int]()
	// Level 0 gets partial keys {0..16}; every level-1 node is single-key.
	for b := 0; b <= 16; b++ {
		trie.Put(uint16(b)<<8|1, b)
	}
	tr := simdtree.Explain[uint16, int](trie, 1<<8|1)
	if !tr.Found {
		t.Fatalf("Explain missed a present key:\n%s", tr)
	}
	// 2 SIMD compares resolve level 0; level 1 is a single-key fast path.
	if got := tr.SIMDComparisons(); got != 2 {
		t.Fatalf("17-key trie node: %d SIMD comparisons, want 2 (§4)\n%s", got, tr)
	}
	if got := tr.NodeVisits(); got != 2 {
		t.Fatalf("NodeVisits = %d, want 2\n%s", got, tr)
	}
	if got := tr.ScalarComparisons(); got != 1 {
		t.Fatalf("ScalarComparisons = %d, want 1 (single-key leaf)\n%s", got, tr)
	}
}

// TestExplainFullDescentSixteenCompares pins the §4 model end to end: a
// 64-bit key descends 8 trie levels; with every node on the path holding
// 17 partial keys each level costs 2 SIMD comparisons — 16 total.
func TestExplainFullDescentSixteenCompares(t *testing.T) {
	trie := simdtree.NewSegTrie[uint64, int]()
	trie.Put(0, -1)
	// At each level l, add 16 siblings diverging there, so the node on the
	// all-zero path holds partial keys {0, 1..16} = 17.
	for l := 0; l < 8; l++ {
		for b := uint64(1); b <= 16; b++ {
			trie.Put(b<<(8*(7-l)), int(b))
		}
	}
	tr := simdtree.Explain[uint64, int](trie, 0)
	if !tr.Found {
		t.Fatalf("Explain missed key 0:\n%s", tr)
	}
	if got := tr.NodeVisits(); got != 8 {
		t.Fatalf("NodeVisits = %d, want 8 levels\n%s", got, tr)
	}
	if got := tr.SIMDComparisons(); got != 16 {
		t.Fatalf("8-level descent: %d SIMD comparisons, want 16 (§4)\n%s", got, tr)
	}
	// One segment step per level.
	segs := 0
	for _, s := range tr.Steps {
		if s.Kind == simdtree.TraceSegment {
			segs++
		}
	}
	if segs != 8 {
		t.Fatalf("segment steps = %d, want 8\n%s", segs, tr)
	}
}

// TestExplainFullNodeZeroCompares pins the §4 full-node fast path: a
// node holding all 256 partial keys is indexed directly, with zero
// comparisons of any kind.
func TestExplainFullNodeZeroCompares(t *testing.T) {
	trie := simdtree.NewSegTrie[uint16, int]()
	for b := 0; b < 256; b++ {
		trie.Put(uint16(b)<<8|1, b)
	}
	tr := simdtree.Explain[uint16, int](trie, 200<<8|1)
	if !tr.Found {
		t.Fatalf("Explain missed a present key:\n%s", tr)
	}
	if got := tr.SIMDComparisons(); got != 0 {
		t.Fatalf("full 256-key node: %d SIMD comparisons, want 0 (§4)\n%s", got, tr)
	}
	if !strings.Contains(tr.String(), "full-node") {
		t.Fatalf("trace missing full-node fast path:\n%s", tr)
	}
}

// TestExplainOptimizedTriePrefixSkip checks the optimized trie's
// compressed-prefix steps appear in traces: consecutive small keys
// collapse the upper levels into a prefix compared bytewise.
func TestExplainOptimizedTriePrefixSkip(t *testing.T) {
	trie := simdtree.NewOptimizedSegTrie[uint64, string]()
	for i := uint64(0); i < 100; i++ {
		trie.Put(i, "v")
	}
	tr := simdtree.Explain[uint64, string](trie, 42)
	if !tr.Found {
		t.Fatalf("Explain missed key 42:\n%s", tr)
	}
	skips := 0
	for _, s := range tr.Steps {
		if s.Kind == simdtree.TracePrefixSkip {
			skips++
			if s.Note != "prefix-matched" {
				t.Fatalf("prefix step note %q\n%s", s.Note, tr)
			}
		}
	}
	if skips == 0 {
		t.Fatalf("no prefix-skip steps on consecutive-key optimized trie:\n%s", tr)
	}
	// A prefix mismatch ends the search visibly.
	miss := simdtree.Explain[uint64, string](trie, 1<<40)
	if miss.Found {
		t.Fatal("Explain hit an absent key")
	}
	if !strings.Contains(miss.String(), "prefix-mismatch") {
		t.Fatalf("miss trace lacks prefix-mismatch:\n%s", miss)
	}
}

// TestExplainSegTreeRendersDescent checks Explain on a Seg-Tree and the
// String rendering carry the load/mask/position evidence of Algorithm 5.
func TestExplainSegTreeRendersDescent(t *testing.T) {
	tree := simdtree.NewSegTree[uint64, int]()
	for i := uint64(0); i < 5000; i++ {
		tree.Put(i*2, int(i))
	}
	tr := simdtree.Explain[uint64, int](tree, 2468)
	if !tr.Found {
		t.Fatalf("Explain missed a present key:\n%s", tr)
	}
	s := tr.String()
	for _, want := range []string{"structure=segtree", "hit", "node:", "load", "mask=0x", "branch -> child"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	if tr.SIMDComparisons() == 0 || tr.NodeVisits() < 2 {
		t.Fatalf("descent not recorded: simd=%d nodes=%d", tr.SIMDComparisons(), tr.NodeVisits())
	}
}

// TestInstrumentedSampling checks the facade wiring of always-on sampled
// tracing: rate 1 records every Get, the slow log obeys its threshold,
// and Explain works through the wrapper.
func TestInstrumentedSampling(t *testing.T) {
	ix := simdtree.NewInstrumentedIndex[uint64, string](
		simdtree.WithStructure(simdtree.StructureSegTree))
	for i := uint64(0); i < 1000; i++ {
		ix.Put(i, "v")
	}
	if ix.Sampler() != nil {
		t.Fatal("sampler attached before EnableSampling")
	}
	sp := ix.EnableSampling(1, 0)
	for i := uint64(0); i < 10; i++ {
		ix.Get(i)
	}
	st := sp.Stats()
	if st.Ops != 10 || st.Sampled != 10 {
		t.Fatalf("rate-1 stats = %+v, want 10/10", st)
	}
	traces := sp.Sampled()
	if len(traces) != 10 {
		t.Fatalf("Sampled len = %d", len(traces))
	}
	for _, tr := range traces {
		if tr.Structure != "segtree" || !tr.Found || tr.Duration <= 0 || len(tr.Steps) == 0 {
			t.Fatalf("malformed sampled trace: %+v", tr)
		}
	}
	// An impossible threshold keeps the slow log empty; a zero threshold
	// disables it outright.
	if len(sp.SlowOps()) != 0 {
		t.Fatal("slow log populated with threshold disabled")
	}
	sp.SetSlowThreshold(time.Nanosecond)
	ix.Get(1)
	if len(sp.SlowOps()) == 0 {
		t.Fatal("1ns threshold caught nothing")
	}
	// Rate 0 turns sampling off but keeps Explain working.
	sp.SetRate(0)
	before := sp.Stats().Sampled
	ix.Get(2)
	if sp.Stats().Sampled != before {
		t.Fatal("rate 0 still sampled")
	}
	if tr := ix.Explain(3); !tr.Found || tr.Structure != "segtree" {
		t.Fatalf("Explain through wrapper: %+v", tr)
	}
}
