package simdtree_test

import (
	"testing"

	simdtree "repro"
)

func TestFacadeSegTree(t *testing.T) {
	tr := simdtree.NewSegTree[uint32, string]()
	if !tr.Put(42, "answer") {
		t.Fatal("put")
	}
	if v, ok := tr.Get(42); !ok || v != "answer" {
		t.Fatal("get")
	}
	if _, ok := tr.Get(43); ok {
		t.Fatal("phantom")
	}
	cfg := simdtree.DefaultSegTreeConfig[uint32]()
	if cfg.LeafCap != 338 {
		t.Fatalf("default config leaf cap %d", cfg.LeafCap)
	}
	cfg.Layout = simdtree.BreadthFirst
	cfg.Evaluator = simdtree.SwitchCase
	tr2 := simdtree.NewSegTreeWithConfig[uint32, string](cfg)
	tr2.Put(7, "seven")
	if v, ok := tr2.Get(7); !ok || v != "seven" {
		t.Fatal("custom config get")
	}
}

func TestFacadeBulkLoadAndScan(t *testing.T) {
	ks := make([]uint64, 1000)
	vs := make([]int, 1000)
	for i := range ks {
		ks[i] = uint64(i * 2)
		vs[i] = i
	}
	seg := simdtree.BulkLoadSegTree(ks, vs)
	base := simdtree.BulkLoadBPlusTree(ks, vs,
		simdtree.WithLeafCap(64), simdtree.WithBranchCap(64))
	// The deprecated config-struct forms build the same trees.
	seg2 := simdtree.BulkLoadSegTreeWithConfig(simdtree.DefaultSegTreeConfig[uint64](), ks, vs)
	if seg2.Len() != seg.Len() {
		t.Fatalf("WithConfig bulk load diverged: %d != %d", seg2.Len(), seg.Len())
	}
	base2 := simdtree.BulkLoadBPlusTreeWithConfig(simdtree.BPlusTreeConfig{LeafCap: 64, BranchCap: 64}, ks, vs)
	if base2.Len() != base.Len() {
		t.Fatalf("WithConfig B+ bulk load diverged: %d != %d", base2.Len(), base.Len())
	}
	count := 0
	seg.Scan(100, 200, func(k uint64, v int) bool { count++; return true })
	if count != 51 {
		t.Fatalf("seg scan count %d", count)
	}
	count = 0
	base.Scan(100, 200, func(k uint64, v int) bool { count++; return true })
	if count != 51 {
		t.Fatalf("base scan count %d", count)
	}
}

func TestFacadeTries(t *testing.T) {
	trie := simdtree.NewSegTrie[uint64, int]()
	opt := simdtree.NewOptimizedSegTrie[uint64, int]()
	for i := 0; i < 1000; i++ {
		trie.Put(uint64(i), i)
		opt.Put(uint64(i), i)
	}
	if v, ok := trie.Get(999); !ok || v != 999 {
		t.Fatal("trie get")
	}
	if v, ok := opt.Get(999); !ok || v != 999 {
		t.Fatal("optimized get")
	}
	if trie.Levels() != 8 {
		t.Fatal("trie levels")
	}
	cfg := simdtree.SegTrieConfig{Layout: simdtree.DepthFirst, Evaluator: simdtree.BitShift}
	tr2 := simdtree.NewSegTrieWithConfig[uint32, int](cfg)
	tr2.Put(5, 5)
	if !tr2.Contains(5) {
		t.Fatal("custom trie")
	}
	opt2 := simdtree.NewOptimizedSegTrieWithConfig[uint32, int](cfg)
	opt2.Put(5, 5)
	if !opt2.Contains(5) {
		t.Fatal("custom optimized trie")
	}
}

func TestFacadeKaryTree(t *testing.T) {
	sorted := []int64{1, 5, 9, 12, 20, 33, 47, 58}
	kt := simdtree.BuildKaryTree(sorted, simdtree.BreadthFirst)
	for _, v := range []int64{0, 1, 5, 6, 58, 60} {
		if got, want := kt.Search(v, simdtree.Popcount), simdtree.UpperBound(sorted, v); got != want {
			t.Fatalf("search %d: got %d want %d", v, got, want)
		}
	}
}

func TestFacadeTable2Constants(t *testing.T) {
	if simdtree.KValue[uint8]() != 17 || simdtree.ParallelComparisons[uint8]() != 16 {
		t.Fatal("8-bit table 2")
	}
	if simdtree.KValue[uint64]() != 3 || simdtree.ParallelComparisons[uint64]() != 2 {
		t.Fatal("64-bit table 2")
	}
}
