package simdtree

import (
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/shape"
)

// Observability surface of the facade: the runtime counters behind the
// paper's §4/§5 cost model (SIMD comparisons, node visits, ...), per-op
// latency histograms, and the instrumented index wrapper that exposes
// both, including Prometheus text rendering (see cmd/segserve for a
// complete /metrics server).

// Counters accumulates the paper's cost-model quantities while enabled:
// SIMD comparisons, bitmask evaluations, node visits, k-ary levels
// descended and scalar comparisons. The zero value is ready to use; all
// methods are safe for concurrent use.
type Counters = obs.Counters

// CounterSnapshot is one read of a Counters.
type CounterSnapshot = obs.CounterSnapshot

// HistogramSnapshot is one read of a latency histogram: power-of-two
// nanosecond buckets, total count and sum.
type HistogramSnapshot = obs.HistogramSnapshot

// EnableCounters directs every structure's search-path hooks into c and
// returns the previously enabled Counters (nil if none) for restoring:
//
//	var c simdtree.Counters
//	prev := simdtree.EnableCounters(&c)
//	defer simdtree.EnableCounters(prev)
//	tree.Get(42)
//	fmt.Println(c.Read().SIMDComparisons)
//
// While no Counters is enabled the hooks cost one atomic load.
func EnableCounters(c *Counters) (prev *Counters) { return obs.Enable(c) }

// DisableCounters detaches and returns the enabled Counters, if any.
func DisableCounters() (prev *Counters) { return obs.Disable() }

// ActiveCounters returns the currently enabled Counters, or nil.
func ActiveCounters() *Counters { return obs.Active() }

// InstrumentedIndex wraps any Index with per-operation latency histograms
// and optional cost-model counters; it satisfies Index itself. Construct
// with NewInstrumentedIndex or NewIndex(WithInstrumentation(...)), or wrap
// an existing index with WrapInstrumented.
type InstrumentedIndex[K Key, V any] = index.Instrumented[K, V]

// IndexSnapshot is everything an InstrumentedIndex records: per-op
// latency histograms, cost-model counters and the index shape.
type IndexSnapshot = index.MetricsSnapshot

// Op identifies one timed operation class of an InstrumentedIndex.
type Op = index.Op

// Timed operation classes.
const (
	OpGet           = index.OpGet
	OpContains      = index.OpContains
	OpPut           = index.OpPut
	OpDelete        = index.OpDelete
	OpGetBatch      = index.OpGetBatch
	OpContainsBatch = index.OpContainsBatch
	OpScan          = index.OpScan
)

// Ops lists every timed operation class of an InstrumentedIndex, in
// label order — the iteration callers use to read all histograms (or all
// windowed snapshots via InstrumentedIndex.WindowSnapshot).
var Ops = index.Ops

// WindowedHistogram is a ring of epoch latency histograms answering
// recent-window quantiles ("p99 over the last 30 s") next to the
// lifetime figures; InstrumentedIndex.EnableWindows attaches one per op.
// See internal/health for the SLO engine that evaluates burn rates over
// these windows.
type WindowedHistogram = obs.WindowedHistogram

// NewWindowedHistogram returns a histogram windowed over epochs ticks of
// the given duration.
func NewWindowedHistogram(tick time.Duration, epochs int) *WindowedHistogram {
	return obs.NewWindowedHistogram(tick, epochs)
}

// WrapInstrumented wraps an existing index with instrumentation;
// withCounters attaches dedicated cost-model Counters scoped to the
// wrapper's operations.
func WrapInstrumented[K Key, V any](ix Index[K, V], withCounters bool) *InstrumentedIndex[K, V] {
	return index.NewInstrumented(ix, withCounters)
}

// ShapeReport is the structural-health summary every Index produces via
// Shape(): per-level fill factors, the key/pointer/padding byte split,
// bytes-per-key, SIMD-register utilization, §3.3 replenishment counts
// and §4 level-omission savings. Render with its String method or
// marshal it as JSON; cmd/segserve serves it at /debug/shape.
type ShapeReport = shape.Report

// ShapeLevelFill is one level's node count and fill inside a
// ShapeReport.
type ShapeLevelFill = shape.LevelFill
