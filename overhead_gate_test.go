//go:build overheadgate

package simdtree_test

// Timing gate asserting the tracer's zero-cost-when-disabled claim: with
// the sampler attached but idle (rate 0 — the production state between
// samples), a Get must cost within 2% of the same instrumented wrapper
// with no sampler at all. That isolates the tracing addition — one
// atomic pointer load per Get — from the wrapper's own pre-existing
// overhead, which observability_bench_test.go bounds separately at 5%
// of the bare structure. Timing assertions flake under load, so this
// runs only with the overheadgate build tag — from `make bench`, never
// in tier-1:
//
//	go test -tags overheadgate -run '^TestTracerOffOverheadGate$' -count=1 .

import (
	"context"
	"testing"
	"time"

	simdtree "repro"
	"repro/internal/health"
	"repro/internal/obs"
)

const (
	gateRuns     = 5   // best-of-N to shrug off scheduler noise
	gateSlackPct = 2.0 // the required <2% bound
)

func bestNsPerOp(f func(b *testing.B)) float64 {
	best := 0.0
	for i := 0; i < gateRuns; i++ {
		r := testing.Benchmark(f)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func TestTracerOffOverheadGate(t *testing.T) {
	probes := traceBenchProbes()
	bare := traceBenchTree()
	noSampler := simdtree.WrapInstrumented(traceBenchTree(), false)
	samplerOff := simdtree.WrapInstrumented(traceBenchTree(), false)
	samplerOff.EnableSampling(0, 0) // attached but idle

	// Windowed metrics run on BOTH compared indexes, so the gate still
	// isolates the tracer's cost — and pins that the serving configuration
	// (windows attached, SLO engine evaluating in the background, as
	// segserve runs with -slo) leaves the <2% tracer-off bound intact.
	noSampler.EnableWindows(time.Second, 8)
	samplerOff.EnableWindows(time.Second, 8)
	objectives, err := health.ParseObjectives("get_p99<1s")
	if err != nil {
		t.Fatal(err)
	}
	// The background work must hit both indexes identically — rotating or
	// probing only one side would skew exactly the comparison the gate
	// makes.
	engine, err := health.NewEngine(health.Config{
		Objectives: objectives,
		Probe: func(window time.Duration) health.Sample {
			s := health.Sample{Ops: map[string]obs.HistogramSnapshot{}}
			if h, ok := noSampler.WindowSnapshot(simdtree.OpGet, window); ok {
				s.Ops["get"] = h
			}
			if h, ok := samplerOff.WindowSnapshot(simdtree.OpGet, window); ok {
				merged := s.Ops["get"]
				merged.Merge(h)
				s.Ops["get"] = merged
			}
			return s
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	engineDone := make(chan struct{})
	go func() {
		defer close(engineDone)
		engine.Run(ctx, 100*time.Millisecond, func() {
			noSampler.RotateWindows()
			samplerOff.RotateWindows()
		})
	}()

	bareNs := bestNsPerOp(func(b *testing.B) { runTraceBench(b, bare, probes) })
	baseNs := bestNsPerOp(func(b *testing.B) { runTraceBench(b, noSampler, probes) })
	offNs := bestNsPerOp(func(b *testing.B) { runTraceBench(b, samplerOff, probes) })

	cancel()
	<-engineDone
	if engine.Status().Evaluations == 0 {
		t.Fatal("SLO engine never evaluated during the measurement")
	}

	overhead := (offNs - baseNs) / baseNs * 100
	t.Logf("bare %.1f ns/op, instrumented %.1f ns/op, instrumented+sampler-off %.1f ns/op, tracer overhead %+.2f%% (windows on, SLO engine evaluating, %d evaluations)",
		bareNs, baseNs, offNs, overhead, engine.Status().Evaluations)
	if overhead > gateSlackPct {
		t.Fatalf("tracer-off overhead %.2f%% exceeds %.1f%% (no sampler %.1f ns/op, sampler off %.1f ns/op)",
			overhead, gateSlackPct, baseNs, offNs)
	}
}
