// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), plus ablations of the design choices called out in DESIGN.md.
// cmd/segbench produces the same measurements as formatted tables; these
// testing.B targets integrate them with `go test -bench`.
package simdtree_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bitmask"
	"repro/internal/btree"
	"repro/internal/concurrent"
	"repro/internal/gentrie"
	"repro/internal/index"
	"repro/internal/kary"
	"repro/internal/keys"
	"repro/internal/segtree"
	"repro/internal/segtrie"
	"repro/internal/simd"
	"repro/internal/workload"
	"repro/internal/zhouross"
)

var sink int

// probeLoop drives b.N probes through a prepared workbench.
func probeLoop[K keys.Key](b *testing.B, wb *bench.Workbench[K]) {
	b.Helper()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		j := i % len(wb.Probes)
		if wb.Trees[wb.TreePick[j]].Contains(wb.Probes[j]) {
			hits++
		}
	}
	sink += hits
}

// BenchmarkFigure9 measures the three bitmask-evaluation algorithms on an
// 8-bit Seg-Tree across the paper's three data-set classes (Figure 9).
func BenchmarkFigure9(b *testing.B) {
	for _, ev := range bitmask.Evaluators {
		for _, class := range workload.Classes {
			b.Run(fmt.Sprintf("%s/%s", ev, class), func(b *testing.B) {
				wb := bench.NewWorkbench[uint8](class, workload.DefaultProbeCount, 1,
					bench.SegTreeBuilder[uint8](kary.BreadthFirst, ev))
				probeLoop(b, wb)
			})
		}
	}
}

// figure10 benchmarks one key type: binary-search B+-Tree against the
// Seg-Tree with both layouts across the three classes (Figure 10).
func figure10[K keys.Key](b *testing.B, name string) {
	algos := []struct {
		name  string
		build func([]K) bench.Searcher[K]
	}{
		{"binary", bench.BTreeBuilder[K]()},
		{"kary-bf", bench.SegTreeBuilder[K](kary.BreadthFirst, bitmask.Popcount)},
		{"kary-df", bench.SegTreeBuilder[K](kary.DepthFirst, bitmask.Popcount)},
	}
	for _, class := range workload.Classes {
		for _, algo := range algos {
			b.Run(fmt.Sprintf("%s/%s/%s", name, class, algo.name), func(b *testing.B) {
				wb := bench.NewWorkbench[K](class, workload.DefaultProbeCount, 1, algo.build)
				probeLoop(b, wb)
			})
		}
	}
}

// BenchmarkFigure10 measures Seg-Tree search for all four key widths
// (Figure 10).
func BenchmarkFigure10(b *testing.B) {
	figure10[uint8](b, "8bit")
	figure10[uint16](b, "16bit")
	figure10[uint32](b, "32bit")
	figure10[uint64](b, "64bit")
}

// BenchmarkFigure11 measures the trie-versus-tree comparison for 64-bit
// consecutive keys as tree depth grows (Figure 11). The Table 3 geometry
// covers depths 1–2 here (depth 3 needs 16.7 M keys — run cmd/segbench
// for it); the scaled 16-key-node geometry extends the same mechanism to
// depth 4.
func BenchmarkFigure11(b *testing.B) {
	geometry := func(label string, caps, fanout, maxDepth, maxKeys int) {
		for depth := 1; depth <= maxDepth; depth++ {
			n := 1
			for i := 0; i < depth; i++ {
				n *= fanout
			}
			if n > maxKeys {
				break
			}
			rng := rand.New(rand.NewSource(int64(depth)))
			ks := workload.Ascending[uint64](n)
			vs := make([]uint64, len(ks))
			probes := workload.Probes(rng, ks, workload.DefaultProbeCount)

			run := func(name string, s bench.Searcher[uint64]) {
				b.Run(fmt.Sprintf("%s/depth%d/%s", label, depth, name), func(b *testing.B) {
					b.ResetTimer()
					hits := 0
					for i := 0; i < b.N; i++ {
						if s.Contains(probes[i%len(probes)]) {
							hits++
						}
					}
					sink += hits
				})
			}

			run("btree-binary", btree.BulkLoad[uint64, uint64](btree.Config{LeafCap: caps, BranchCap: caps}, ks, vs))
			cfg := segtree.DefaultConfig[uint64]()
			cfg.LeafCap, cfg.BranchCap = caps, caps
			cfg.Layout = kary.BreadthFirst
			run("segtree-bf", segtree.BulkLoad[uint64, uint64](cfg, ks, vs))
			cfg.Layout = kary.DepthFirst
			run("segtree-df", segtree.BulkLoad[uint64, uint64](cfg, ks, vs))
			trie := segtrie.NewDefault[uint64, uint64]()
			opt := segtrie.NewOptimizedDefault[uint64, uint64]()
			for i, k := range ks {
				trie.Put(k, uint64(i))
				opt.Put(k, uint64(i))
			}
			run("segtrie", trie)
			run("opt-segtrie", opt)
		}
	}
	geometry("table3", 242, 256, 3, 1<<17)
	geometry("scaled", 16, 16, 4, 1<<17)
}

// karyFlat benchmarks the §2.2 micro-comparison on a flat sorted list for
// one key type: binary search versus k-ary search in both layouts.
func karyFlat[K keys.Key](b *testing.B, name string, n int) {
	rng := rand.New(rand.NewSource(5))
	var ks []K
	if w := keys.Width[K](); w <= 2 && n >= 1<<(8*w) {
		ks = workload.FullDomain[K]()
	} else {
		ks = workload.UniformRandom[K](rng, n)
	}
	probes := workload.Probes(rng, ks, workload.DefaultProbeCount)
	bf := kary.Build(ks, kary.BreadthFirst)
	df := kary.Build(ks, kary.DepthFirst)

	b.Run(name+"/binary", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += kary.UpperBound(ks, probes[i%len(probes)])
		}
		sink += acc
	})
	b.Run(name+"/kary-bf", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += bf.Search(probes[i%len(probes)], bitmask.Popcount)
		}
		sink += acc
	})
	b.Run(name+"/kary-df", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += df.Search(probes[i%len(probes)], bitmask.Popcount)
		}
		sink += acc
	})
}

// BenchmarkKarySearch is the §2.2 micro-benchmark: k-ary versus binary
// search on flat sorted arrays, per key width at the Table 3 node sizes.
func BenchmarkKarySearch(b *testing.B) {
	karyFlat[uint8](b, "8bit-node", 256)
	karyFlat[uint16](b, "16bit-node", 404)
	karyFlat[uint32](b, "32bit-node", 338)
	karyFlat[uint64](b, "64bit-node", 242)
	karyFlat[uint32](b, "32bit-64k", 65536)
	karyFlat[uint64](b, "64bit-64k", 65536)
}

// BenchmarkAblationEqualityCheck measures the §3.1 equality-test extension
// the paper discusses and expects not to pay off on flat k-ary trees.
func BenchmarkAblationEqualityCheck(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	ks := workload.UniformRandom[uint32](rng, 338)
	probes := workload.Probes(rng, ks, workload.DefaultProbeCount)
	bf := kary.Build(ks, kary.BreadthFirst)
	b.Run("greater-than-only", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += bf.Search(probes[i%len(probes)], bitmask.Popcount)
		}
		sink += acc
	})
	b.Run("with-equality-exit", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += bf.SearchWithEquality(probes[i%len(probes)], bitmask.Popcount)
		}
		sink += acc
	})
}

// BenchmarkAblationSWARvsScalar quantifies what the SWAR substrate buys
// over a scalar per-lane loop for the 16-lane 8-bit compare sequence.
func BenchmarkAblationSWARvsScalar(b *testing.B) {
	var buf [16]byte
	rng := rand.New(rand.NewSource(7))
	rng.Read(buf[:])
	search := simd.NewSearch(1, 0x41)
	searchReg := simd.Set1Epi8(0x41 ^ 0x80)
	b.Run("fused-swar", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			buf[0] = byte(i)
			acc += int(search.GtMask(buf[:]))
		}
		sink += acc
	})
	b.Run("composed-swar", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			buf[0] = byte(i)
			reg := simd.Load(buf[:])
			acc += int(simd.MoveMaskEpi8(simd.CmpGtEpi8(reg, searchReg)))
		}
		sink += acc
	})
	b.Run("scalar-loop", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			buf[0] = byte(i)
			reg := simd.Load(buf[:])
			acc += int(simd.MoveMaskEpi8(simd.RefCmpGt(1, reg, searchReg)))
		}
		sink += acc
	})
}

// BenchmarkAblationNodeSearchStrategies compares the classic inner-node
// search strategies (§1): sequential, binary and k-ary, on one Table 3
// node of 32-bit keys.
func BenchmarkAblationNodeSearchStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ks := workload.UniformRandom[uint32](rng, 338)
	probes := workload.Probes(rng, ks, workload.DefaultProbeCount)
	bf := kary.Build(ks, kary.BreadthFirst)
	b.Run("sequential", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += kary.SequentialUpperBound(ks, probes[i%len(probes)])
		}
		sink += acc
	})
	b.Run("binary", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += kary.UpperBound(ks, probes[i%len(probes)])
		}
		sink += acc
	})
	b.Run("kary", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += bf.Search(probes[i%len(probes)], bitmask.Popcount)
		}
		sink += acc
	})
}

// BenchmarkAblationTrieFastPaths compares trie lookups that hit the §4
// full-node fast path (dense root, direct indexing) against lookups that
// run the 17-ary search (sparse root).
func BenchmarkAblationTrieFastPaths(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	dense := segtrie.NewDefault[uint16, int]()
	for i := 0; i < 65536; i += 7 { // touches all 256 root partial keys
		dense.Put(uint16(i), i)
	}
	sparse := segtrie.NewDefault[uint16, int]()
	for i := 0; i < 65536; i += 520 { // 126 root partial keys: searched
		sparse.Put(uint16(i), i)
	}
	denseProbes := workload.Probes(rng, workload.FullDomain[uint16](), workload.DefaultProbeCount)
	b.Run("full-node-direct-index", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if dense.Contains(denseProbes[i%len(denseProbes)]) {
				hits++
			}
		}
		sink += hits
	})
	b.Run("searched-node", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if sparse.Contains(denseProbes[i%len(denseProbes)]) {
				hits++
			}
		}
		sink += hits
	})
}

// BenchmarkBitmaskEvaluators microbenchmarks the three §2.1 algorithms in
// isolation on all lane widths.
func BenchmarkBitmaskEvaluators(b *testing.B) {
	for _, ev := range bitmask.Evaluators {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/width%d", ev, w), func(b *testing.B) {
				acc := 0
				c := 16 / w
				for i := 0; i < b.N; i++ {
					mask := bitmask.SwitchPointMask(i%(c+1), w)
					acc += ev.Evaluate(mask, w)
				}
				sink += acc
			})
		}
	}
}

// BenchmarkSegTrieUpdates measures the trie's write paths (ascending
// tuple-ID appends versus random inserts), documenting the §3.2 reordering
// cost on the trie side.
func BenchmarkSegTrieUpdates(b *testing.B) {
	b.Run("ascending-append", func(b *testing.B) {
		tr := segtrie.NewOptimizedDefault[uint64, int]()
		for i := 0; i < b.N; i++ {
			tr.Put(uint64(i), i)
		}
	})
	b.Run("random-insert", func(b *testing.B) {
		rng := rand.New(rand.NewSource(10))
		tr := segtrie.NewOptimizedDefault[uint64, int]()
		for i := 0; i < b.N; i++ {
			tr.Put(rng.Uint64(), i)
		}
	})
}

// BenchmarkSegTreeUpdates measures the Seg-Tree's write paths: the
// continuous-filling fast path versus reordering random inserts (§3.2).
func BenchmarkSegTreeUpdates(b *testing.B) {
	b.Run("ascending-append", func(b *testing.B) {
		tr := segtree.NewDefault[uint64, int]()
		for i := 0; i < b.N; i++ {
			tr.Put(uint64(i), i)
		}
	})
	b.Run("random-insert", func(b *testing.B) {
		rng := rand.New(rand.NewSource(11))
		tr := segtree.NewDefault[uint64, int]()
		for i := 0; i < b.N; i++ {
			tr.Put(rng.Uint64(), i)
		}
	})
	b.Run("baseline-random-insert", func(b *testing.B) {
		rng := rand.New(rand.NewSource(11))
		tr := btree.NewDefault[uint64, int]()
		for i := 0; i < b.N; i++ {
			tr.Put(rng.Uint64(), i)
		}
	})
}

// BenchmarkZhouRossComparison compares the paper's k-ary search against
// the three Zhou-Ross SIMD strategies it cites as related work (§6), on a
// flat sorted array of 32-bit keys.
func BenchmarkZhouRossComparison(b *testing.B) {
	for _, n := range []int{338, 65536} {
		rng := rand.New(rand.NewSource(12))
		ks := workload.UniformRandom[uint32](rng, n)
		probes := workload.Probes(rng, ks, workload.DefaultProbeCount)
		zr := zhouross.New(ks)
		kt := kary.Build(ks, kary.BreadthFirst)
		run := func(name string, fn func(uint32) int) {
			b.Run(fmt.Sprintf("n%d/%s", n, name), func(b *testing.B) {
				acc := 0
				for i := 0; i < b.N; i++ {
					acc += fn(probes[i%len(probes)])
				}
				sink += acc
			})
		}
		run("scalar-binary", zr.ScalarSearch)
		run("zr-sequential", zr.SequentialSearch)
		run("zr-binary", zr.BinarySearch)
		run("zr-hybrid", zr.HybridSearch)
		run("kary", func(v uint32) int { return kt.Search(v, bitmask.Popcount) })
	}
}

// BenchmarkParallelSearch measures read-only probe throughput across
// goroutine counts — the §7 future-work extension. On a single-core host
// it degenerates to overhead measurement; on multi-core hosts it shows
// read scaling.
func BenchmarkParallelSearch(b *testing.B) {
	ks := workload.Ascending[uint64](1 << 20)
	vs := make([]uint64, len(ks))
	tr := segtree.BulkLoad[uint64, uint64](segtree.DefaultConfig[uint64](), ks, vs)
	rng := rand.New(rand.NewSource(13))
	probes := workload.Probes(rng, ks, workload.DefaultProbeCount)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i += len(probes) {
				sink += concurrent.ParallelSearch[uint64, uint64](tr, probes, workers)
			}
		})
	}
}

// BenchmarkSerialization measures snapshot write and restore throughput.
func BenchmarkSerialization(b *testing.B) {
	ks := workload.Ascending[uint64](1 << 17)
	vs := make([]uint64, len(ks))
	tr := segtree.BulkLoad[uint64, uint64](segtree.DefaultConfig[uint64](), ks, vs)
	encode := func(w io.Writer, v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := w.Write(buf[:])
		return err
	}
	decode := func(r io.Reader) (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	var snapshot bytes.Buffer
	if err := tr.Serialize(&snapshot, encode); err != nil {
		b.Fatal(err)
	}
	b.Run("serialize", func(b *testing.B) {
		b.SetBytes(int64(snapshot.Len()))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := tr.Serialize(&buf, encode); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deserialize", func(b *testing.B) {
		b.SetBytes(int64(snapshot.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := segtree.Deserialize[uint64, uint64](bytes.NewReader(snapshot.Bytes()), decode); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGeneralizedTrieVsSegTrie measures the §6 contrast against the
// Boehm et al. generalized trie: direct-indexed full-fanout nodes versus
// 17-ary-searched compact nodes, on dense and sparse 64-bit key sets.
func BenchmarkGeneralizedTrieVsSegTrie(b *testing.B) {
	cases := []struct {
		name string
		gen  func(rng *rand.Rand, i int) uint64
	}{
		{"dense", func(_ *rand.Rand, i int) uint64 { return uint64(i) }},
		{"sparse", func(rng *rand.Rand, _ int) uint64 { return rng.Uint64() }},
	}
	const n = 200000
	for _, c := range cases {
		rng := rand.New(rand.NewSource(14))
		gen := gentrie.New[uint64, int]()
		seg := segtrie.NewDefault[uint64, int]()
		opt := segtrie.NewOptimizedDefault[uint64, int]()
		loaded := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			k := c.gen(rng, i)
			gen.Put(k, i)
			seg.Put(k, i)
			opt.Put(k, i)
			loaded = append(loaded, k)
		}
		probes := workload.Probes(rng, loaded, workload.DefaultProbeCount)
		run := func(name string, contains func(uint64) bool) {
			b.Run(c.name+"/"+name, func(b *testing.B) {
				hits := 0
				for i := 0; i < b.N; i++ {
					if contains(probes[i%len(probes)]) {
						hits++
					}
				}
				sink += hits
			})
		}
		run("generalized", gen.Contains)
		run("segtrie", seg.Contains)
		run("opt-segtrie", opt.Contains)
	}
}

// BenchmarkRangeScan measures ordered iteration throughput: the B+-Tree
// sequence set (paper §1: linked leaves "speedup sequential processing")
// against the trie walks, scanning 1000-key windows.
func BenchmarkRangeScan(b *testing.B) {
	const n = 1 << 20
	ks := workload.Ascending[uint64](n)
	vs := make([]uint64, n)
	base := btree.BulkLoad[uint64, uint64](btree.DefaultConfig[uint64](), ks, vs)
	seg := segtree.BulkLoad[uint64, uint64](segtree.DefaultConfig[uint64](), ks, vs)
	trie := segtrie.NewDefault[uint64, uint64]()
	opt := segtrie.NewOptimizedDefault[uint64, uint64]()
	for i, k := range ks {
		trie.Put(k, uint64(i))
		opt.Put(k, uint64(i))
	}
	const window = 1000
	run := func(name string, scan func(lo, hi uint64, fn func(uint64, uint64) bool)) {
		b.Run(name, func(b *testing.B) {
			acc := uint64(0)
			for i := 0; i < b.N; i++ {
				lo := uint64((i * 7919) % (n - window))
				scan(lo, lo+window-1, func(k, v uint64) bool {
					acc += v
					return true
				})
			}
			sink += int(acc)
		})
	}
	run("btree", base.Scan)
	run("segtree", seg.Scan)
	run("segtrie", trie.Scan)
	run("opt-segtrie", opt.Scan)
}

// BenchmarkGetBatchLevelWise measures the level-wise batch search engine
// against per-probe Get for all four structures on the 5 MB and 100 MB
// classes (64-bit keys, batches of 256 probes drawn with replacement).
// The engine sorts each batch, deduplicates equal keys and descends all
// group cursors level-synchronously; on the out-of-cache 100 MB class
// that converts dependent pointer chases into grouped, locality-friendly
// node visits.
func BenchmarkGetBatchLevelWise(b *testing.B) {
	const batch = 256
	for _, class := range []workload.Class{workload.FiveMB, workload.HundredMB} {
		n := workload.KeysFor[uint64](class)
		ks := workload.Ascending[uint64](n)
		vs := make([]uint64, n)
		rng := rand.New(rand.NewSource(16))
		probes := workload.Probes(rng, ks, 1<<14)

		trie := segtrie.NewDefault[uint64, uint64]()
		opt := segtrie.NewOptimizedDefault[uint64, uint64]()
		for i, k := range ks {
			trie.Put(k, uint64(i))
			opt.Put(k, uint64(i))
		}
		targets := []struct {
			name string
			ix   index.Index[uint64, uint64]
		}{
			{"btree", btree.BulkLoad[uint64, uint64](btree.DefaultConfig[uint64](), ks, vs)},
			{"segtree", segtree.BulkLoad[uint64, uint64](segtree.DefaultConfig[uint64](), ks, vs)},
			{"segtrie", trie},
			{"opt-segtrie", opt},
		}
		for _, tg := range targets {
			b.Run(fmt.Sprintf("%s/%s/get-serial", class, tg.name), func(b *testing.B) {
				hits := 0
				for i := 0; i < b.N; i++ {
					if _, ok := tg.ix.Get(probes[i%len(probes)]); ok {
						hits++
					}
				}
				sink += hits
			})
			b.Run(fmt.Sprintf("%s/%s/get-batch", class, tg.name), func(b *testing.B) {
				hits := 0
				for i := 0; i < b.N; i += batch {
					off := i % (len(probes) - batch)
					_, found := tg.ix.GetBatch(probes[off : off+batch])
					for _, f := range found {
						if f {
							hits++
						}
					}
				}
				sink += hits
			})
		}
	}
}

// BenchmarkShardedPut compares concurrent Put throughput of the
// key-range-sharded index (16 shards, per-shard RW locks) against the
// single global lock of LockedMap at 1, 4 and 16 writer goroutines over
// uniformly random 64-bit keys. The inner structure is the B+-Tree
// baseline: its cheap inserts keep the measurement about lock
// contention, not about the Seg-Tree's per-node re-linearization cost
// (which at ~26 µs per random insert would swamp any locking effect).
func BenchmarkShardedPut(b *testing.B) {
	run := func(name string, workers int, mk func() interface{ Put(uint64, uint64) bool }) {
		b.Run(fmt.Sprintf("%s/goroutines%d", name, workers), func(b *testing.B) {
			m := mk()
			var wg sync.WaitGroup
			per := b.N/workers + 1
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < per; i++ {
						m.Put(rng.Uint64(), uint64(i))
					}
				}(int64(w + 1))
			}
			wg.Wait()
		})
	}
	for _, workers := range []int{1, 4, 16} {
		run("locked", workers, func() interface{ Put(uint64, uint64) bool } {
			return concurrent.NewLocked[uint64, uint64](btree.NewDefault[uint64, uint64]())
		})
		run("sharded16", workers, func() interface{ Put(uint64, uint64) bool } {
			return index.NewSharded[uint64, uint64](16, func() index.Index[uint64, uint64] {
				return btree.NewDefault[uint64, uint64]()
			})
		})
	}
}

// BenchmarkGetUnderWrites measures read latency while a continuous
// writer publishes mutations — the scenario the MVCC snapshot layer
// exists for. Readers (RunParallel) issue random Gets against a
// preloaded index; the "writes" variants run one background writer
// mutating random preloaded keys for the whole measurement. Under the
// global readers-writer lock every exclusive writer section stalls the
// read fleet; the versioned and sharded indexes pin published versions
// lock-free, so their reads should barely degrade. cmd/segbench
// -experiment contention records the same comparison into BENCH JSON
// for the benchdiff gate.
func BenchmarkGetUnderWrites(b *testing.B) {
	const preload = 1 << 16
	type rw interface {
		Get(uint64) (uint64, bool)
		Put(uint64, uint64) bool
	}
	builders := []struct {
		name string
		mk   func() rw
	}{
		{"locked", func() rw {
			return concurrent.NewLocked[uint64, uint64](btree.NewDefault[uint64, uint64]())
		}},
		{"versioned", func() rw {
			return index.NewVersioned[uint64, uint64](func() index.Index[uint64, uint64] {
				return btree.NewDefault[uint64, uint64]()
			})
		}},
		{"sharded16", func() rw {
			return index.NewSharded[uint64, uint64](16, func() index.Index[uint64, uint64] {
				return btree.NewDefault[uint64, uint64]()
			})
		}},
	}
	for _, bd := range builders {
		for _, writes := range []bool{false, true} {
			name := bd.name + "/idle"
			if writes {
				name = bd.name + "/writes"
			}
			b.Run(name, func(b *testing.B) {
				ix := bd.mk()
				for i := uint64(0); i < preload; i++ {
					ix.Put(i, i)
				}
				stop := make(chan struct{})
				var writerWg sync.WaitGroup
				if writes {
					writerWg.Add(1)
					go func() {
						defer writerWg.Done()
						rng := rand.New(rand.NewSource(977))
						for i := uint64(0); ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							ix.Put(rng.Uint64()%preload, i)
						}
					}()
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(int64(b.N)))
					hits := 0
					for pb.Next() {
						if _, ok := ix.Get(rng.Uint64() % (2 * preload)); ok {
							hits++
						}
					}
					_ = hits
				})
				b.StopTimer()
				close(stop)
				writerWg.Wait()
			})
		}
	}
}

// BenchmarkBatchedLookup compares one-at-a-time Get with the
// level-synchronized GetBatch on a memory-bound 100 MB working set. The
// batched descent overlaps independent node misses, which is where the
// emulated-SIMD Seg-Tree recovers the ground it loses to the binary
// baseline in the serial Figure 10 measurements.
func BenchmarkBatchedLookup(b *testing.B) {
	n := workload.KeysFor[uint64](workload.HundredMB)
	ks := workload.Ascending[uint64](n)
	vs := make([]uint64, n)
	seg := segtree.BulkLoad[uint64, uint64](segtree.DefaultConfig[uint64](), ks, vs)
	base := btree.BulkLoad[uint64, uint64](btree.DefaultConfig[uint64](), ks, vs)
	rng := rand.New(rand.NewSource(15))
	probes := workload.Probes(rng, ks, 1<<14)
	const batch = 64

	b.Run("segtree-serial", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if seg.Contains(probes[i%len(probes)]) {
				hits++
			}
		}
		sink += hits
	})
	b.Run("segtree-batched", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i += batch {
			off := (i / batch * batch) % (len(probes) - batch)
			_, found := seg.GetBatch(probes[off : off+batch])
			for _, f := range found {
				if f {
					hits++
				}
			}
		}
		sink += hits
	})
	b.Run("btree-serial", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if base.Contains(probes[i%len(probes)]) {
				hits++
			}
		}
		sink += hits
	})
	b.Run("btree-batched", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i += batch {
			off := (i / batch * batch) % (len(probes) - batch)
			_, found := base.GetBatch(probes[off : off+batch])
			for _, f := range found {
				if f {
					hits++
				}
			}
		}
		sink += hits
	})
}
